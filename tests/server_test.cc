// End-to-end serving battery for the HTTP front door (src/server/).
//
// The load-bearing contract: a query served over the wire is
// *bit-identical* to the same query executed embedded — same entities,
// same %.17g-rendered scores, byte-for-byte the same JSON document
// (core::ResultToJson is the single renderer on both paths). On top of
// that: per-request deadlines surface as partial results with
// exact-prefix scores, admission control sheds with 429 once the
// bounded queue fills, concurrent clients never interleave responses
// (the TSan gate for the worker pool), and the /healthz + /metrics
// surfaces keep their pinned schemas.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "core/engine.h"
#include "core/result_json.h"
#include "datagen/domain_spec.h"
#include "eval/experiment.h"
#include "obs/metrics.h"
#include "server/http_client.h"
#include "server/httpd.h"
#include "server/json.h"
#include "server/server.h"

namespace opinedb {
namespace {

std::string JsonString(std::string_view s) {
  std::string out;
  JsonEscapeAppend(s, &out);
  return out;
}

/// {"sql": "<sql>"} plus any extra raw members.
std::string QueryBody(const std::string& sql, const std::string& extra = "") {
  std::string body = "{\"sql\": " + JsonString(sql);
  if (!extra.empty()) body += ", " + extra;
  body += "}";
  return body;
}

class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eval::BuildOptions options;
    options.generator.num_entities = 20;
    options.generator.min_reviews_per_entity = 8;
    options.generator.max_reviews_per_entity = 14;
    options.generator.seed = 61;
    options.seed = 61;
    options.extractor_training_sentences = 400;
    options.predicate_pool_size = 40;
    options.membership_training_tuples = 400;
    artifacts_ = new eval::DomainArtifacts(
        eval::BuildArtifacts(datagen::HotelDomain(), options));

    server::QueryServerOptions server_options;
    server_options.httpd.num_workers = 4;
    server_options.httpd.queue_capacity = 16;
    server_ = new server::QueryServer(artifacts_->db.get(), server_options);
    const Status started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
  }

  static void TearDownTestSuite() {
    server_->Stop();
    delete server_;
    server_ = nullptr;
    delete artifacts_;
    artifacts_ = nullptr;
  }

  void TearDown() override {
    db().SetTraceLevel(obs::TraceLevel::kOff);
  }

  static core::OpineDb& db() { return *artifacts_->db; }
  static uint16_t port() { return server_->port(); }

  static server::HttpClient Connected() {
    server::HttpClient client;
    const Status status = client.Connect("127.0.0.1", port());
    EXPECT_TRUE(status.ok()) << status.ToString();
    return client;
  }

  /// The embedded render the wire body must match byte for byte.
  static std::string EmbeddedJson(const std::string& sql) {
    auto result = db().Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
    return core::ResultToJson(*result);
  }

  static eval::DomainArtifacts* artifacts_;
  static server::QueryServer* server_;
};

eval::DomainArtifacts* ServerTest::artifacts_ = nullptr;
server::QueryServer* ServerTest::server_ = nullptr;

const char* const kQueries[] = {
    "select * from hotels where \"clean room\" limit 5",
    "select * from hotels where \"friendly staff\" limit 10",
    "select * from hotels where rating > 2.0 and \"clean room\" limit 5",
    "select * from hotels where \"clean room\" and \"friendly staff\" "
    "limit 3",
};

// ------------------------------------------------------- Bit identity.

TEST_F(ServerTest, LoopbackRoundTripBitIdenticalToEmbedded) {
  server::HttpClient client = Connected();
  for (const char* sql : kQueries) {
    SCOPED_TRACE(sql);
    const std::string expected = EmbeddedJson(sql);
    auto response = client.Post("/query", QueryBody(sql));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->status, 200);
    EXPECT_EQ(response->Header("content-type"), "application/json");
    // The serving layer's core contract: the wire body IS the embedded
    // render, byte for byte (same %.17g doubles, same layout).
    EXPECT_EQ(response->body, expected);
  }
}

TEST_F(ServerTest, RepeatedServingIsDeterministic) {
  server::HttpClient client = Connected();
  const std::string body = QueryBody(kQueries[0]);
  auto first = client.Post("/query", body);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  for (int i = 0; i < 5; ++i) {
    auto again = client.Post("/query", body);
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    EXPECT_EQ(again->body, first->body);
  }
}

// -------------------------------------------------- Deadline partials.

TEST_F(ServerTest, ZeroDeadlineReturnsPartialWithExactPrefixScores) {
  // Embedded full run: the reference score of every entity.
  auto full = db().Execute(kQueries[1]);
  ASSERT_TRUE(full.ok());
  std::map<int64_t, double> full_scores;
  for (const auto& r : full->results) full_scores[r.entity] = r.score;

  server::HttpClient client = Connected();
  auto response =
      client.Post("/query", QueryBody(kQueries[1], "\"deadline_ms\": 0"));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->status, 200);
  auto doc = server::JsonValue::Parse(response->body);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  // A zero budget expires at the first checkpoint: deterministic
  // partial, never an error.
  EXPECT_EQ(doc->GetBool("partial"), std::make_optional(true));
  const auto watermark = doc->GetNumber("watermark");
  ASSERT_TRUE(watermark.has_value());
  EXPECT_LE(*watermark, static_cast<double>(db().corpus().num_entities()));
  // Prefix consistency over the wire: every emitted score is the exact
  // full score (%.17g round-trips doubles bit-exactly, so strtod on
  // the response recovers the same bits Execute produced).
  const server::JsonValue* results = doc->Find("results");
  ASSERT_NE(results, nullptr);
  for (const server::JsonValue& row : results->items()) {
    const auto entity = row.GetNumber("entity");
    const auto score = row.GetNumber("score");
    ASSERT_TRUE(entity.has_value() && score.has_value());
    const auto it = full_scores.find(static_cast<int64_t>(*entity));
    ASSERT_NE(it, full_scores.end());
    EXPECT_EQ(*score, it->second) << "entity " << *entity;
  }
}

TEST_F(ServerTest, GenerousDeadlineServesTheFullResult) {
  server::HttpClient client = Connected();
  auto response = client.Post(
      "/query", QueryBody(kQueries[0], "\"deadline_ms\": 60000"));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->body, EmbeddedJson(kQueries[0]));
}

TEST_F(ServerTest, NegativeDeadlineRejected400) {
  server::HttpClient client = Connected();
  auto response =
      client.Post("/query", QueryBody(kQueries[0], "\"deadline_ms\": -5"));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 400);
}

// ------------------------------------------------- Concurrent hammer.

// The TSan gate for the serving path: many clients, each on its own
// keep-alive connection, hammering the worker pool with a mixed query
// load. Every response must be intact and bit-identical to the
// embedded render — a torn or interleaved response is a framing bug,
// a data race is a TSan report.
TEST_F(ServerTest, ConcurrentClientsGetBitIdenticalResponses) {
  std::vector<std::string> expected;
  for (const char* sql : kQueries) expected.push_back(EmbeddedJson(sql));

  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 12;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &expected, &failures] {
      server::HttpClient client;
      if (!client.Connect("127.0.0.1", port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const size_t pick = static_cast<size_t>(t + i) % 4;
        auto response =
            client.Post("/query", QueryBody(kQueries[pick]));
        if (!response.ok() || response->status != 200 ||
            response->body != expected[pick]) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

// ----------------------------------------------- Admission control.

// Saturate a one-worker server whose queue holds a single connection:
// the third concurrent client must be shed with an immediate 429 and
// Retry-After, while both admitted connections are served to
// completion once the worker unblocks.
TEST(ServerAdmissionTest, ShedsWith429WhenQueueFull) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> executing{0};
  server::HttpdOptions options;
  options.num_workers = 1;
  options.queue_capacity = 1;
  server::Httpd httpd(options, [&](const server::HttpRequest&) {
    executing.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
    return server::HttpResponse::Json(200, "{\"ok\": true}\n");
  });
  ASSERT_TRUE(httpd.Start().ok());

  // Connection A: admitted, popped by the worker, handler now blocked.
  server::HttpClient a;
  ASSERT_TRUE(a.Connect("127.0.0.1", httpd.port()).ok());
  ASSERT_TRUE(a.SendRaw("GET /a HTTP/1.1\r\nConnection: close\r\n\r\n").ok());
  while (executing.load() == 0) std::this_thread::yield();

  // Connection B: admitted into the (now empty) queue slot.
  server::HttpClient b;
  ASSERT_TRUE(b.Connect("127.0.0.1", httpd.port()).ok());
  ASSERT_TRUE(b.SendRaw("GET /b HTTP/1.1\r\nConnection: close\r\n\r\n").ok());
  while (httpd.accepted_count() < 2) std::this_thread::yield();

  // Connection C: queue full -> shed with 429, never served.
  server::HttpClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", httpd.port()).ok());
  ASSERT_TRUE(c.SendRaw("GET /c HTTP/1.1\r\n\r\n").ok());
  auto shed = c.ReadResponse();
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(shed->status, 429);
  EXPECT_EQ(shed->Header("retry-after"), "1");
  EXPECT_EQ(httpd.shed_count(), 1u);

  // Unblock the worker: both admitted connections complete normally —
  // shedding was load shedding, not collateral damage.
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  auto ra = a.ReadResponse();
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  EXPECT_EQ(ra->status, 200);
  auto rb = b.ReadResponse();
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  EXPECT_EQ(rb->status, 200);
  EXPECT_EQ(httpd.served_count(), 2u);
  httpd.Stop();
}

// ------------------------------------------------ Health and metrics.

TEST_F(ServerTest, HealthzSchemaPinned) {
  server::HttpClient client = Connected();
  auto response = client.Get("/healthz");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  auto doc = server::JsonValue::Parse(response->body);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->GetString("status"), std::make_optional<std::string>("ok"));
  EXPECT_EQ(doc->GetNumber("entities"),
            std::make_optional(static_cast<double>(
                db().corpus().num_entities())));
  ASSERT_TRUE(doc->GetNumber("snapshot_generation").has_value());
  ASSERT_TRUE(doc->GetNumber("cache_epoch").has_value());
}

TEST_F(ServerTest, MetricsScrapeSchemaAndServerCounters) {
  db().SetTraceLevel(obs::TraceLevel::kStats);
  server::HttpClient client = Connected();
  // Drive at least one served request so the server.* families exist.
  auto query = client.Post("/query", QueryBody(kQueries[0]));
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ASSERT_EQ(query->status, 200);

  auto response = client.Get("/metrics");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  auto doc = server::JsonValue::Parse(response->body);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  // Registry schema pin: the three metric families.
  const server::JsonValue* counters = doc->Find("counters");
  const server::JsonValue* gauges = doc->Find("gauges");
  const server::JsonValue* histograms = doc->Find("histograms");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(gauges, nullptr);
  ASSERT_NE(histograms, nullptr);
  ASSERT_TRUE(counters->is_object());
  ASSERT_TRUE(gauges->is_object());
  ASSERT_TRUE(histograms->is_object());
  // Serving metrics pin: request counter, inflight gauge, latency
  // histogram (docs/OBSERVABILITY.md "Serving metrics" table).
  const server::JsonValue* requests = counters->Find("server.requests");
  ASSERT_NE(requests, nullptr);
  EXPECT_GE(requests->AsNumber(), 1.0);
  EXPECT_NE(gauges->Find("server.inflight"), nullptr);
  EXPECT_NE(histograms->Find("server.latency_ms"), nullptr);
}

// ------------------------------------------------------- Error paths.

TEST_F(ServerTest, ErrorPathsAnswerTypedJsonEnvelopes) {
  server::HttpClient client = Connected();
  struct Case {
    const char* name;
    const char* method;
    const char* target;
    std::string body;
    int want_status;
  };
  const Case kCases[] = {
      {"unknown route", "GET", "/nope", "", 404},
      {"wrong method on /query", "GET", "/query", "", 405},
      {"wrong method on /metrics", "POST", "/metrics", "{}", 405},
      {"malformed body json", "POST", "/query", "{\"sql\": ", 400},
      {"body not an object", "POST", "/query", "[1,2,3]", 400},
      {"missing sql field", "POST", "/query", "{}", 400},
      {"unparseable sql", "POST", "/query",
       QueryBody("select pineapple frum"), 400},
  };
  for (const auto& test_case : kCases) {
    SCOPED_TRACE(test_case.name);
    auto response =
        client.Request(test_case.method, test_case.target, test_case.body);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->status, test_case.want_status);
    // Every error is a parseable {"error": ...} envelope.
    auto doc = server::JsonValue::Parse(response->body);
    ASSERT_TRUE(doc.ok()) << response->body;
    EXPECT_TRUE(doc->GetString("error").has_value());
  }
}

TEST_F(ServerTest, OversizedBodyRejected413) {
  server::HttpClient client = Connected();
  const std::string oversized((1 << 20) + 1, 'x');
  auto response = client.Post("/query", oversized);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 413);
}

TEST_F(ServerTest, OversizedHeaderBlockRejected431) {
  server::HttpClient client = Connected();
  std::string wire = "GET /healthz HTTP/1.1\r\n";
  wire += "X-Padding: " + std::string(17 * 1024, 'p') + "\r\n\r\n";
  ASSERT_TRUE(client.SendRaw(wire).ok());
  auto response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 431);
}

TEST_F(ServerTest, MalformedRequestLineRejected400) {
  server::HttpClient client = Connected();
  ASSERT_TRUE(client.SendRaw("BOGUS\r\n\r\n").ok());
  auto response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 400);
}

// ---------------------------------------------- Connection lifecycle.

TEST_F(ServerTest, KeepAliveServesManyThenHonorsConnectionClose) {
  server::HttpClient client = Connected();
  for (int i = 0; i < 5; ++i) {
    auto response = client.Get("/healthz");
    ASSERT_TRUE(response.ok()) << "request " << i << ": "
                               << response.status().ToString();
    EXPECT_EQ(response->status, 200);
    EXPECT_EQ(response->Header("connection"), "keep-alive");
  }
  auto final_response = client.Request("GET", "/healthz", "",
                                       {{"Connection", "close"}});
  ASSERT_TRUE(final_response.ok()) << final_response.status().ToString();
  EXPECT_EQ(final_response->status, 200);
  EXPECT_EQ(final_response->Header("connection"), "close");
  // The server hung up: the next request on this connection fails at
  // the transport layer instead of hanging.
  auto after_close = client.Get("/healthz");
  EXPECT_FALSE(after_close.ok());
}

TEST_F(ServerTest, PipelinedRequestsAreServedInOrder) {
  server::HttpClient client = Connected();
  ASSERT_TRUE(client
                  .SendRaw("GET /healthz HTTP/1.1\r\n\r\n"
                           "GET /metrics HTTP/1.1\r\n\r\n")
                  .ok());
  auto first = client.ReadResponse();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->status, 200);
  auto doc = server::JsonValue::Parse(first->body);
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc->GetString("status").has_value());  // healthz first.
  auto second = client.ReadResponse();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->status, 200);
  auto metrics = server::JsonValue::Parse(second->body);
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->Find("counters"), nullptr);  // metrics second.
}

// ------------------------------------------------------ Admin surface.

TEST_F(ServerTest, ExplainRouteMatchesEmbeddedPlanText) {
  const std::string sql = "select * from hotels where rating > 2.0 and "
                          "\"clean room\" limit 5";
  auto embedded = db().Execute("explain " + sql);
  ASSERT_TRUE(embedded.ok());
  server::HttpClient client = Connected();
  auto response = client.Post("/explain", QueryBody(sql));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->status, 200);
  auto doc = server::JsonValue::Parse(response->body);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->GetString("plan_text"),
            std::make_optional(embedded->plan_text));
  EXPECT_EQ(doc->GetString("plan"),
            std::make_optional<std::string>(
                core::PlanKindName(embedded->plan)));
}

TEST_F(ServerTest, AdminSnapshotSaveAndOpenRoundTrip) {
  const std::string dir =
      ::testing::TempDir() + "/opinedb_server_snapshot_test";
  server::HttpClient client = Connected();

  // No directory configured and none in the body: a typed 400.
  auto bad = client.Post("/admin/snapshot/save", "{}");
  ASSERT_TRUE(bad.ok()) << bad.status().ToString();
  EXPECT_EQ(bad->status, 400);

  auto saved = client.Post("/admin/snapshot/save",
                           "{\"dir\": " + JsonString(dir) + "}");
  ASSERT_TRUE(saved.ok()) << saved.status().ToString();
  ASSERT_EQ(saved->status, 200) << saved->body;
  auto saved_doc = server::JsonValue::Parse(saved->body);
  ASSERT_TRUE(saved_doc.ok());
  const auto generation = saved_doc->GetNumber("generation");
  ASSERT_TRUE(generation.has_value());
  EXPECT_GE(*generation, 1.0);

  auto opened = client.Post("/admin/snapshot/open",
                            "{\"dir\": " + JsonString(dir) + "}");
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ASSERT_EQ(opened->status, 200) << opened->body;
  auto opened_doc = server::JsonValue::Parse(opened->body);
  ASSERT_TRUE(opened_doc.ok());
  EXPECT_EQ(opened_doc->GetNumber("generation"), generation);

  // /healthz reflects the open, and a query still serves bit-identical
  // to embedded after the snapshot round trip.
  auto health = client.Get("/healthz");
  ASSERT_TRUE(health.ok());
  auto health_doc = server::JsonValue::Parse(health->body);
  ASSERT_TRUE(health_doc.ok());
  EXPECT_EQ(health_doc->GetNumber("snapshot_generation"), generation);
  auto query = client.Post("/query", QueryBody(kQueries[0]));
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ASSERT_EQ(query->status, 200);
  EXPECT_EQ(query->body, EmbeddedJson(kQueries[0]));
}

// ---------------------------------------------- Optional sections.

TEST_F(ServerTest, StatsSectionIsOptInViaFlagOrBody) {
  server::HttpClient client = Connected();
  auto plain = client.Post("/query", QueryBody(kQueries[0]));
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->body.find("\"stats\""), std::string::npos);

  auto via_body =
      client.Post("/query", QueryBody(kQueries[0], "\"stats\": true"));
  ASSERT_TRUE(via_body.ok());
  EXPECT_NE(via_body->body.find("\"stats\""), std::string::npos);

  auto via_query = client.Post("/query?stats=1", QueryBody(kQueries[0]));
  ASSERT_TRUE(via_query.ok());
  EXPECT_NE(via_query->body.find("\"stats\""), std::string::npos);
  auto doc = server::JsonValue::Parse(via_query->body);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const server::JsonValue* stats = doc->Find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->GetNumber("entities_scored"),
            std::make_optional(static_cast<double>(
                db().corpus().num_entities())));
}

TEST_F(ServerTest, InterpretationsCanBeSuppressed) {
  server::HttpClient client = Connected();
  auto suppressed = client.Post(
      "/query", QueryBody(kQueries[0], "\"interpretations\": false"));
  ASSERT_TRUE(suppressed.ok());
  ASSERT_EQ(suppressed->status, 200);
  EXPECT_EQ(suppressed->body.find("\"interpretations\""),
            std::string::npos);
}

// ------------------------------------------------- Client timeouts.

// A stalled peer — accepted the request, never answers — must surface
// as the typed, retryable Status::Unavailable within the configured
// read budget, not hang the caller (the replication client's pull loop
// depends on this to notice a wedged primary).
TEST(HttpClientTimeoutTest, StalledServerSurfacesAsUnavailable) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  server::HttpdOptions options;
  options.num_workers = 1;
  server::Httpd httpd(options, [&](const server::HttpRequest&) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait_for(lock, std::chrono::seconds(10), [&] { return release; });
    return server::HttpResponse::Json(200, "{\"ok\": true}\n");
  });
  ASSERT_TRUE(httpd.Start().ok());

  server::HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", httpd.port(),
                             /*connect_timeout_ms=*/2000,
                             /*read_timeout_ms=*/200)
                  .ok());
  const auto before = std::chrono::steady_clock::now();
  auto stalled = client.Get("/never-answered");
  const auto elapsed = std::chrono::steady_clock::now() - before;
  ASSERT_FALSE(stalled.ok()) << "a stalled peer must not yield a response";
  EXPECT_EQ(stalled.status().code(), StatusCode::kUnavailable)
      << stalled.status().ToString();
  EXPECT_LT(elapsed, std::chrono::seconds(5))
      << "the read budget must bound the stall";

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  httpd.Stop();
}

// --------------------------------------------------- Graceful drain.

// Stop() must let a slow in-flight request finish (up to the drain
// grace) while refusing new connections immediately — a deploy rolls
// the server without truncating the response some client already paid
// for.
TEST(ServerDrainTest, StopDrainsInFlightRequestAndRefusesNewOnes) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> executing{0};
  server::HttpdOptions options;
  options.num_workers = 1;
  options.drain_grace_ms = 5000;
  server::Httpd httpd(options, [&](const server::HttpRequest&) {
    executing.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait_for(lock, std::chrono::seconds(10), [&] { return release; });
    return server::HttpResponse::Json(200, "{\"drained\": true}\n");
  });
  ASSERT_TRUE(httpd.Start().ok());
  const uint16_t port = httpd.port();

  // The slow in-flight request: admitted, handler now blocked.
  server::HttpClient slow;
  ASSERT_TRUE(slow.Connect("127.0.0.1", port).ok());
  ASSERT_TRUE(
      slow.SendRaw("GET /slow HTTP/1.1\r\nConnection: close\r\n\r\n").ok());
  while (executing.load() == 0) std::this_thread::yield();

  std::thread stopper([&] { httpd.Stop(); });

  // New arrivals are refused as soon as Stop() closes the listener.
  bool refused = false;
  for (int i = 0; i < 500 && !refused; ++i) {
    server::HttpClient probe;
    if (!probe.Connect("127.0.0.1", port, /*connect_timeout_ms=*/100).ok()) {
      refused = true;
      break;
    }
    // A connection that slipped in before the close may still be open;
    // give Stop() a beat and retry.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(refused) << "Stop() must refuse new connections immediately";

  // Release the handler: the drained response arrives intact.
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  auto response = slow.ReadResponse();
  ASSERT_TRUE(response.ok())
      << "drain grace must let the in-flight response flush: "
      << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->body, "{\"drained\": true}\n");
  stopper.join();
}

}  // namespace
}  // namespace opinedb
