// Unit tests for core components that need small controlled fixtures:
// membership features, the aggregator, and seed expansion — independent
// of the full end-to-end build exercised in engine_integration_test.
#include <cmath>

#include <gtest/gtest.h>

#include "core/aggregator.h"
#include "core/attribute_classifier.h"
#include "core/membership.h"
#include "embedding/phrase_rep.h"
#include "embedding/word2vec.h"

namespace opinedb::core {
namespace {

/// Hand-built embeddings: axis-aligned vectors for a controlled space.
embedding::WordEmbeddings ToyEmbeddings() {
  text::Vocab vocab;
  vocab.AddCount("clean", 10);
  vocab.AddCount("spotless", 5);
  vocab.AddCount("dirty", 10);
  vocab.AddCount("room", 20);
  vocab.AddCount("staff", 20);
  vocab.AddCount("friendly", 10);
  vocab.AddCount("rude", 10);
  std::vector<embedding::Vec> vectors = {
      {1.0f, 0.0f, 0.0f, 0.1f},   // clean
      {0.95f, 0.05f, 0.0f, 0.1f}, // spotless
      {-1.0f, 0.0f, 0.0f, 0.1f},  // dirty
      {0.0f, 1.0f, 0.0f, 0.1f},   // room
      {0.0f, 0.0f, 1.0f, 0.1f},   // staff
      {0.3f, 0.0f, 0.9f, 0.1f},   // friendly
      {-0.3f, 0.0f, 0.9f, 0.1f},  // rude
  };
  return embedding::WordEmbeddings(std::move(vocab), std::move(vectors));
}

SubjectiveSchema ToySchema() {
  SubjectiveSchema schema;
  schema.objective_table = "hotels";
  schema.key_column = "name";
  SubjectiveAttribute cleanliness;
  cleanliness.name = "cleanliness";
  cleanliness.summary_type.name = "cleanliness";
  cleanliness.summary_type.kind = SummaryKind::kLinearlyOrdered;
  cleanliness.summary_type.markers = {"clean", "dirty"};
  cleanliness.seeds.aspect_terms = {"room"};
  cleanliness.seeds.opinion_terms = {"clean", "dirty", "spotless"};
  schema.attributes.push_back(cleanliness);
  SubjectiveAttribute service;
  service.name = "service";
  service.summary_type.name = "service";
  service.summary_type.kind = SummaryKind::kLinearlyOrdered;
  service.summary_type.markers = {"friendly", "rude"};
  service.seeds.aspect_terms = {"staff"};
  service.seeds.opinion_terms = {"friendly", "rude"};
  schema.attributes.push_back(service);
  return schema;
}

class AggregatorTest : public ::testing::Test {
 protected:
  AggregatorTest()
      : embeddings_(ToyEmbeddings()),
        embedder_(&embeddings_, nullptr),
        schema_(ToySchema()),
        classifier_(AttributeClassifier::Train(schema_, embeddings_,
                                               /*expansions_per_seed=*/0)),
        aggregator_(&schema_, &classifier_, &embedder_, &analyzer_) {}

  extract::ExtractedOpinion Opinion(text::EntityId entity,
                                    text::ReviewId review,
                                    const char* aspect, const char* opinion,
                                    double sentiment) {
    extract::ExtractedOpinion out;
    out.entity = entity;
    out.review = review;
    out.aspect = aspect;
    out.opinion = opinion;
    out.phrase = std::string(opinion) + " " + aspect;
    out.sentiment = sentiment;
    return out;
  }

  embedding::WordEmbeddings embeddings_;
  embedding::PhraseEmbedder embedder_;
  SubjectiveSchema schema_;
  sentiment::Analyzer analyzer_;
  AttributeClassifier classifier_;
  Aggregator aggregator_;
};

TEST_F(AggregatorTest, RoutesOpinionsToAttributesAndMarkers) {
  text::ReviewCorpus corpus;
  auto hotel = corpus.AddEntity("h");
  auto r0 = corpus.AddReview(hotel, 0, 0, "x");
  auto r1 = corpus.AddReview(hotel, 1, 0, "x");
  std::vector<extract::ExtractedOpinion> opinions = {
      Opinion(hotel, r0, "room", "clean", 0.7),
      Opinion(hotel, r0, "room", "spotless", 1.0),
      Opinion(hotel, r1, "room", "dirty", -0.7),
      Opinion(hotel, r1, "staff", "friendly", 0.7),
  };
  auto tables = aggregator_.Build(corpus, opinions, AggregationOptions());
  const auto& cleanliness = tables.summaries[0][hotel];
  EXPECT_DOUBLE_EQ(cleanliness.count(0), 2.0);  // clean + spotless.
  EXPECT_DOUBLE_EQ(cleanliness.count(1), 1.0);  // dirty.
  const auto& service = tables.summaries[1][hotel];
  EXPECT_DOUBLE_EQ(service.count(0), 1.0);
  EXPECT_DOUBLE_EQ(service.count(1), 0.0);
  // Provenance recorded.
  EXPECT_EQ(cleanliness.cell(0).provenance.size(), 2u);
  EXPECT_EQ(cleanliness.cell(1).provenance[0], r1);
}

TEST_F(AggregatorTest, IncrementalAddMatchesBatch) {
  text::ReviewCorpus corpus;
  auto hotel = corpus.AddEntity("h");
  auto review = corpus.AddReview(hotel, 0, 0, "x");
  std::vector<extract::ExtractedOpinion> opinions = {
      Opinion(hotel, review, "room", "clean", 0.7),
      Opinion(hotel, review, "staff", "rude", -0.8),
  };
  auto batch = aggregator_.Build(corpus, opinions, AggregationOptions());
  auto incremental =
      aggregator_.Build(corpus, {opinions[0]}, AggregationOptions());
  aggregator_.AddOpinion(opinions[1], corpus, AggregationOptions(),
                         &incremental);
  for (size_t a = 0; a < 2; ++a) {
    for (size_t m = 0; m < 2; ++m) {
      EXPECT_DOUBLE_EQ(batch.summaries[a][hotel].count(m),
                       incremental.summaries[a][hotel].count(m))
          << a << "," << m;
    }
  }
  EXPECT_EQ(batch.extraction_attribute, incremental.extraction_attribute);
  EXPECT_EQ(batch.extraction_marker, incremental.extraction_marker);
}

TEST_F(AggregatorTest, DateFilterExcludesOldReviews) {
  text::ReviewCorpus corpus;
  auto hotel = corpus.AddEntity("h");
  auto old_review = corpus.AddReview(hotel, 0, 100, "x");
  auto new_review = corpus.AddReview(hotel, 1, 900, "x");
  std::vector<extract::ExtractedOpinion> opinions = {
      Opinion(hotel, old_review, "room", "dirty", -0.7),
      Opinion(hotel, new_review, "room", "clean", 0.7),
  };
  AggregationOptions options;
  options.min_date = 500;
  auto tables = aggregator_.Build(corpus, opinions, options);
  EXPECT_DOUBLE_EQ(tables.summaries[0][hotel].count(0), 1.0);
  EXPECT_DOUBLE_EQ(tables.summaries[0][hotel].count(1), 0.0);
  EXPECT_EQ(tables.extraction_attribute[0], -1);  // Filtered out.
}

TEST_F(AggregatorTest, FractionalWeightsSumToOne) {
  AggregationOptions options;
  options.fractional = true;
  auto weights = aggregator_.MarkerWeights(0, "spotless room", options);
  double sum = 0.0;
  for (double w : weights) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // The runner-up marker "dirty" has negative similarity to "spotless
  // room", so all mass stays on "clean": fractional assignment never
  // leaks mass onto dissimilar markers.
  EXPECT_NEAR(weights[0], 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(weights[1], 0.0);
}

TEST_F(AggregatorTest, FractionalSplitsBetweenSimilarMarkers) {
  // With markers "clean" and "spotless" (both similar to the phrase),
  // fractional mode splits the phrase's mass between them.
  auto schema = ToySchema();
  schema.attributes[0].summary_type.markers = {"clean", "spotless"};
  AttributeClassifier classifier =
      AttributeClassifier::Train(schema, embeddings_, 0);
  Aggregator aggregator(&schema, &classifier, &embedder_, &analyzer_);
  AggregationOptions options;
  options.fractional = true;
  auto weights = aggregator.MarkerWeights(0, "clean room", options);
  double sum = 0.0;
  int nonzero = 0;
  for (double w : weights) {
    sum += w;
    if (w > 0.0) ++nonzero;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_EQ(nonzero, 2);
  EXPECT_GT(weights[0], weights[1]);  // "clean" is the closer marker.
}

TEST_F(AggregatorTest, MatchThresholdProducesUnmatched) {
  AggregationOptions options;
  options.match_threshold = 2.0;  // Impossible: cosine <= 1.
  auto weights = aggregator_.MarkerWeights(0, "clean room", options);
  for (double w : weights) EXPECT_EQ(w, 0.0);
}

// --------------------------------------------------- MembershipFeatures.

TEST(MembershipFeaturesTest, EmptySummarySetsIndicator) {
  MarkerSummaryType type;
  type.markers = {"a", "b"};
  MarkerSummary summary(&type, 2);
  auto f = MembershipFeatures(summary, 0, {1.0f, 0.0f}, 0.5);
  ASSERT_EQ(f.size(), kMembershipFeatureDim);
  EXPECT_EQ(f[9], 1.0);
  EXPECT_EQ(f[0], 0.0);
}

TEST(MembershipFeaturesTest, MassFractionsAndSentiment) {
  MarkerSummaryType type;
  type.markers = {"good", "bad"};
  MarkerSummary summary(&type, 2);
  summary.AddPhrase({1, 0}, 0.8, {1.0f, 0.0f}, 0);
  summary.AddPhrase({1, 0}, 0.6, {1.0f, 0.0f}, 1);
  summary.AddPhrase({0, 1}, -0.9, {0.0f, 1.0f}, 2);
  auto f = MembershipFeatures(summary, 0, {1.0f, 0.0f}, 0.7);
  EXPECT_NEAR(f[1], 2.0 / 3.0, 1e-9);       // Mass at marker 0.
  EXPECT_NEAR(f[2], 2.0 / 3.0, 1e-9);       // Mass at-or-above marker 0.
  EXPECT_NEAR(f[4], 0.7, 1e-9);             // Target mean sentiment.
  EXPECT_GT(f[5], 0.9);                     // Centroid similarity.
  auto f_bad = MembershipFeatures(summary, 1, {1.0f, 0.0f}, 0.7);
  EXPECT_NEAR(f_bad[1], 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(f_bad[2], 1.0, 1e-9);  // All markers at or above "bad".
}

TEST(MembershipFeaturesTest, NoMarkerVariantSeesPhrases) {
  embedding::WordEmbeddings embeddings = ToyEmbeddings();
  embedding::PhraseEmbedder embedder(&embeddings, nullptr);
  extract::ExtractedOpinion a;
  a.phrase = "clean room";
  a.sentiment = 0.7;
  extract::ExtractedOpinion b;
  b.phrase = "dirty room";
  b.sentiment = -0.7;
  std::vector<const extract::ExtractedOpinion*> phrases = {&a, &b};
  auto f = MembershipFeaturesNoMarkers(phrases, embedder,
                                       embedder.Represent("clean room"),
                                       0.7);
  ASSERT_EQ(f.size(), kMembershipFeatureDim);
  EXPECT_NEAR(f[1], 0.5, 1e-9);  // One of two phrases is similar.
  EXPECT_NEAR(f[3], 0.0, 1e-9);  // Mean sentiment cancels out.
  EXPECT_GT(f[4], 0.99);         // Max similarity: the exact phrase.
}

TEST(MembershipModelTest, LearnsSeparableTuples) {
  std::vector<MembershipModel::LabeledTuple> tuples;
  Rng rng(4);
  for (int i = 0; i < 400; ++i) {
    MembershipModel::LabeledTuple tuple;
    tuple.features.assign(kMembershipFeatureDim, 0.0);
    const double mass = rng.Uniform();
    tuple.features[1] = mass;
    tuple.features[0] = std::log1p(10.0 * rng.Uniform());
    tuple.label = mass > 0.5 ? 1 : 0;
    tuples.push_back(std::move(tuple));
  }
  auto model = MembershipModel::Train(tuples);
  EXPECT_GT(model.Accuracy(tuples), 0.95);
  std::vector<double> good(kMembershipFeatureDim, 0.0);
  good[1] = 0.95;
  std::vector<double> bad(kMembershipFeatureDim, 0.0);
  bad[1] = 0.05;
  EXPECT_GT(model.DegreeOfTruth(good), model.DegreeOfTruth(bad));
}

// ------------------------------------------------------- Seed expansion.

TEST(SeedExpansionTest, AddsSimilarWordsOnly) {
  auto embeddings = ToyEmbeddings();
  auto expanded = ExpandSeeds({"clean"}, embeddings, 3, 0.9);
  // "spotless" is ~0.99 similar; "dirty" is opposite.
  bool has_spotless = false, has_dirty = false;
  for (const auto& term : expanded) {
    if (term == "spotless") has_spotless = true;
    if (term == "dirty") has_dirty = true;
  }
  EXPECT_TRUE(has_spotless);
  EXPECT_FALSE(has_dirty);
}

TEST(SeedExpansionTest, ZeroExpansionsKeepsSeeds) {
  auto embeddings = ToyEmbeddings();
  auto expanded = ExpandSeeds({"clean", "dirty"}, embeddings, 0);
  EXPECT_EQ(expanded.size(), 2u);
}

TEST(AttributeClassifierTest, ClassifiesSeededPairs) {
  auto embeddings = ToyEmbeddings();
  auto schema = ToySchema();
  auto classifier = AttributeClassifier::Train(schema, embeddings, 0);
  EXPECT_EQ(classifier.Classify("room", "clean"), 0);
  EXPECT_EQ(classifier.Classify("staff", "rude"), 1);
  const auto [label, margin] =
      classifier.ClassifyWithMargin("room", "spotless");
  EXPECT_EQ(label, 0);
  EXPECT_GT(margin, 0.5);
  // Unknown evidence gives a small margin.
  const auto [unknown_label, unknown_margin] =
      classifier.ClassifyWithMargin("zzz", "qqq");
  (void)unknown_label;
  EXPECT_LT(unknown_margin, margin);
}

TEST(AttributeClassifierTest, AccuracyOnLabeledTriples) {
  auto embeddings = ToyEmbeddings();
  auto classifier = AttributeClassifier::Train(ToySchema(), embeddings, 0);
  std::vector<std::tuple<std::string, std::string, int>> labeled = {
      {"room", "clean", 0}, {"staff", "friendly", 1}, {"room", "dirty", 0}};
  EXPECT_EQ(classifier.Accuracy(labeled), 1.0);
}

}  // namespace
}  // namespace opinedb::core
