// Robustness regression tests (DESIGN.md §5e):
//
//  - Reaggregate must invalidate an attached degree cache. The cached
//    lists were computed against the old summary tables; before the fix
//    they survived the rebuild and kept answering queries with stale
//    degrees (this test fails on the unfixed engine).
//  - Reconfiguration (Reaggregate / SetNumThreads / SetTraceLevel) is
//    serialized against in-flight queries — before the fix,
//    SetNumThreads destroyed the worker pool a running query had
//    snapshotted (use-after-free under asan; racy under tsan).
//  - Non-finite guards: TrainMembership rejects NaN/Inf features with a
//    Status, and every degree of truth the engine emits is a finite
//    value in [0, 1].
#include <atomic>
#include <cmath>
#include <filesystem>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cache/cache_config.h"
#include "core/degree_cache.h"
#include "core/engine.h"
#include "core/membership.h"
#include "datagen/domain_spec.h"
#include "eval/experiment.h"

namespace opinedb {
namespace {

class RobustnessTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eval::BuildOptions options;
    options.generator.num_entities = 20;
    options.generator.min_reviews_per_entity = 8;
    options.generator.max_reviews_per_entity = 14;
    options.generator.seed = 61;
    options.seed = 61;
    options.extractor_training_sentences = 400;
    options.predicate_pool_size = 30;
    options.membership_training_tuples = 400;
    artifacts_ = new eval::DomainArtifacts(
        eval::BuildArtifacts(datagen::HotelDomain(), options));
  }

  static void TearDownTestSuite() {
    delete artifacts_;
    artifacts_ = nullptr;
  }

  static core::OpineDb& db() { return *artifacts_->db; }

  static std::string Sql() {
    return "select * from hotels where \"" + artifacts_->pool[0].text +
           "\" limit 5";
  }

  static eval::DomainArtifacts* artifacts_;
};

eval::DomainArtifacts* RobustnessTest::artifacts_ = nullptr;

void ExpectBitIdentical(const core::QueryResult& reference,
                        const core::QueryResult& actual) {
  ASSERT_EQ(reference.results.size(), actual.results.size());
  for (size_t i = 0; i < reference.results.size(); ++i) {
    EXPECT_EQ(reference.results[i].entity, actual.results[i].entity);
    EXPECT_EQ(reference.results[i].score, actual.results[i].score);
  }
}

// Regression: before the fix, Reaggregate left the attached cache's
// stale degree lists resident, so cached queries kept ranking against
// summaries that no longer existed.
TEST_F(RobustnessTest, ReaggregateInvalidatesAttachedDegreeCache) {
  const core::AggregationOptions original = db().options().aggregation;
  core::DegreeCache cache(&db());
  db().AttachDegreeCache(&cache);
  // Warm the cache against the current summaries.
  auto warm = db().Execute(Sql());
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ASSERT_GT(cache.size(), 0u);
  const uint64_t epoch_before = cache.epoch();

  // Rebuild the summaries under a meaningfully different aggregation
  // policy (stricter extraction matching changes marker summaries).
  core::AggregationOptions changed = original;
  changed.match_threshold = original.match_threshold * 2.0;
  changed.fractional = !original.fractional;
  db().Reaggregate(changed);

  // The stale lists must be gone, and borrowers must be able to see it.
  EXPECT_EQ(cache.size(), 0u)
      << "Reaggregate left stale degree lists resident in the cache";
  EXPECT_GT(cache.epoch(), epoch_before);

  // End-to-end: the cached query now agrees with a cache-free run over
  // the new summaries.
  auto with_cache = db().Execute(Sql());
  ASSERT_TRUE(with_cache.ok()) << with_cache.status().ToString();
  db().AttachDegreeCache(nullptr);
  auto without_cache = db().Execute(Sql());
  ASSERT_TRUE(without_cache.ok()) << without_cache.status().ToString();
  ExpectBitIdentical(*without_cache, *with_cache);

  // Restore the original aggregation for the other tests (the rebuild
  // is deterministic, so this reproduces the fixture state exactly).
  db().Reaggregate(original);
}

// Before the fix, SetNumThreads reset pool_ while a concurrent query
// could still be executing a ParallelFor on the old pool (use-after-
// free), and Reaggregate swapped tables mid-query. With the
// reconfiguration lock, this hammering is safe at any interleaving —
// asan/tsan runs of this test are the gate.
TEST_F(RobustnessTest, ReconfigurationSerializesAgainstInFlightQueries) {
  const core::AggregationOptions original = db().options().aggregation;
  const std::string sql = Sql();
  std::atomic<bool> done{false};
  std::atomic<int> queries_ok{0};
  std::thread querier([&] {
    while (!done.load(std::memory_order_acquire)) {
      auto run = db().Execute(sql);
      // Results vary across reaggregations; validity must not.
      EXPECT_TRUE(run.ok()) << run.status().ToString();
      if (run.ok()) queries_ok.fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (int i = 0; i < 6; ++i) {
    db().SetNumThreads(i % 2 == 0 ? 4 : 1);
    core::AggregationOptions changed = original;
    changed.fractional = (i % 2 == 0);
    db().Reaggregate(changed);
  }
  done.store(true, std::memory_order_release);
  querier.join();
  EXPECT_GT(queries_ok.load(), 0);
  db().SetNumThreads(1);
  db().Reaggregate(original);
}

TEST_F(RobustnessTest, TrainMembershipRejectsNonFiniteFeatures) {
  auto tuple = [](double poison) {
    core::MembershipModel::LabeledTuple t;
    t.features.assign(core::kMembershipFeatureDim, 0.5);
    t.features[3] = poison;
    t.label = 1;
    return t;
  };
  for (const double poison :
       {std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity()}) {
    const Status status = db().TrainMembership({tuple(poison)});
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
        << "non-finite feature " << poison << " accepted: "
        << status.ToString();
  }
  // Wrong dimensionality is rejected too.
  core::MembershipModel::LabeledTuple short_tuple;
  short_tuple.features.assign(core::kMembershipFeatureDim - 1, 0.5);
  EXPECT_EQ(db().TrainMembership({short_tuple}).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(RobustnessTest, ValidateFeatureVectorAcceptsFiniteVectors) {
  std::vector<double> good(core::kMembershipFeatureDim, 0.25);
  EXPECT_TRUE(core::ValidateFeatureVector(good).ok());
}

// Every degree the engine emits is finite and in [0, 1] — including the
// text-fallback path for predicates no interpreter stage can cover.
TEST_F(RobustnessTest, DegreesOfTruthStayInUnitInterval) {
  std::vector<std::string> predicates;
  for (size_t i = 0; i < 5 && i < artifacts_->pool.size(); ++i) {
    predicates.push_back(artifacts_->pool[i].text);
  }
  predicates.push_back("zorblatt quuxly vibes");
  const size_t n = db().corpus().num_entities();
  for (const auto& predicate : predicates) {
    for (size_t e = 0; e < n; ++e) {
      const double d =
          db().PredicateDegreeOfTruth(predicate,
                                      static_cast<text::EntityId>(e));
      ASSERT_TRUE(std::isfinite(d)) << predicate << " entity " << e;
      ASSERT_GE(d, 0.0) << predicate << " entity " << e;
      ASSERT_LE(d, 1.0) << predicate << " entity " << e;
    }
  }
}

// Membership inference clamps even when the underlying model misfires:
// a freshly default-constructed model must still emit unit-interval
// degrees for extreme (but finite) inputs.
TEST_F(RobustnessTest, MembershipDegreeOfTruthClamps) {
  core::MembershipModel::LabeledTuple a;
  a.features.assign(core::kMembershipFeatureDim, 0.9);
  a.label = 1;
  core::MembershipModel::LabeledTuple b;
  b.features.assign(core::kMembershipFeatureDim, 0.1);
  b.label = 0;
  auto model = core::MembershipModel::Train({a, b, a, b}, 7);
  std::vector<double> extreme(core::kMembershipFeatureDim, 1e12);
  const double d = model.DegreeOfTruth(extreme);
  EXPECT_TRUE(std::isfinite(d));
  EXPECT_GE(d, 0.0);
  EXPECT_LE(d, 1.0);
}

// Regression (the ISSUE-6 epoch-audit fix): TrainMembership replaces
// the membership model — every cached degree list and cached query
// result was computed through the old model. Before the fix it cleared
// neither; an attached degree cache kept serving stale degrees exactly
// like the pre-fix Reaggregate bug above.
TEST_F(RobustnessTest, TrainMembershipInvalidatesAttachedDegreeCache) {
  core::DegreeCache cache(&db());
  db().AttachDegreeCache(&cache);
  auto warm = db().Execute(Sql());
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ASSERT_GT(cache.size(), 0u);
  const uint64_t epoch_before = cache.epoch();

  const auto tuples = eval::MakeMembershipTuples(
      db(), artifacts_->domain, artifacts_->pool, 200, true, 99);
  ASSERT_TRUE(db().TrainMembership(tuples, 9).ok());

  EXPECT_EQ(cache.size(), 0u)
      << "TrainMembership left degree lists computed through the old "
         "membership model resident in the cache";
  EXPECT_GT(cache.epoch(), epoch_before);

  // End-to-end: cached serving agrees with cache-free serving over the
  // retrained model.
  auto with_cache = db().Execute(Sql());
  ASSERT_TRUE(with_cache.ok()) << with_cache.status().ToString();
  db().AttachDegreeCache(nullptr);
  auto without_cache = db().Execute(Sql());
  ASSERT_TRUE(without_cache.ok()) << without_cache.status().ToString();
  ExpectBitIdentical(*without_cache, *with_cache);
}

// The epoch audit, pinned: every mutation of served data bumps the
// cache epoch exactly once; execution-reconfig operations bump it
// exactly zero times. The differential harness relies on this contract
// (cache_equivalence_test tracks the epoch in lockstep across both
// engines); this is the narrow unit statement of the same rule.
TEST_F(RobustnessTest, EveryMutationBumpsCacheEpochExactlyOnce) {
  const core::AggregationOptions original = db().options().aggregation;
  uint64_t epoch = db().cache_epoch();

  // Reaggregate: +1, regardless of whether the options changed.
  db().Reaggregate(original);
  EXPECT_EQ(db().cache_epoch(), ++epoch);

  // TrainMembership: +1.
  const auto tuples = eval::MakeMembershipTuples(
      db(), artifacts_->domain, artifacts_->pool, 200, true, 42);
  ASSERT_TRUE(db().TrainMembership(tuples, 6).ok());
  EXPECT_EQ(db().cache_epoch(), ++epoch);

  // Execution reconfiguration: +0 — the served data did not change, so
  // warm caches stay valid across all of these.
  db().SetNumThreads(4);
  db().SetNumThreads(1);
  db().SetTraceLevel(obs::TraceLevel::kStats);
  db().SetTraceLevel(obs::TraceLevel::kOff);
  core::DegreeCache cache(&db());
  db().AttachDegreeCache(&cache);
  db().AttachDegreeCache(nullptr);
  db().ConfigureCaches(cache::CacheConfig());
  EXPECT_EQ(db().cache_epoch(), epoch);

  // Queries: +0.
  auto run = db().Execute(Sql());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(db().cache_epoch(), epoch);

  // SaveDatabase alone: +0 (a consistent read). OpenDatabase: +1 — the
  // served tables were replaced wholesale.
  const auto dir =
      std::filesystem::path(::testing::TempDir()) / "epoch_audit_snapshot";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  ASSERT_TRUE(db().SaveDatabase(dir.string()).ok());
  EXPECT_EQ(db().cache_epoch(), epoch);
  ASSERT_TRUE(db().OpenDatabase(dir.string()).ok());
  EXPECT_EQ(db().cache_epoch(), ++epoch);
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace opinedb
