// Unit battery for storage WAL segments (src/storage/wal.{h,cc}): the
// checksummed framing format, segment naming, the append → fsync →
// acknowledge protocol, torn-tail recovery (ReadWal never fails on
// corruption — it shortens the valid prefix), and the truncate-then-
// reopen repair cycle. Three layers:
//
//  1. deterministic contracts: naming round-trip, header verification,
//     append/read round-trips, reopen-after-repair, base-generation
//     mismatch rejection;
//  2. a sweep of the two writer-level fault::kWalSites entries
//     (storage.wal_short_write, storage.wal_fsync) asserting each
//     leaves the on-disk segment in exactly the state the acknowledged
//     prefix promises (the third entry, storage.wal_fold, fires inside
//     the engine checkpoint and is swept by ingest_test.cc);
//  3. a >= 10k-case seeded corruption fuzzer: bit flips, truncations
//     and junk extensions of a real segment must never crash ReadWal,
//     and the surviving records must be a bit-identical prefix of the
//     originals, repairable by TruncateWal + WalWriter::Open.
//
// The fault sweep self-skips when OPINEDB_FAULT_INJECTION is off; the
// contracts and the fuzzer run in every build.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "storage/wal.h"

namespace opinedb::storage {
namespace {

namespace fs = std::filesystem;

std::string ReadFileBytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::DisarmAll();
    dir_ = fs::path(::testing::TempDir()) /
           ("wal_test_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    std::error_code ec;
    fs::remove_all(dir_, ec);
    fs::create_directories(dir_);
    path_ = (dir_ / WalFileName(7)).string();
  }

  void TearDown() override {
    fault::DisarmAll();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  /// Opens the test segment at base generation 7 and appends `payloads`.
  void WriteSegment(const std::vector<std::string>& payloads) {
    auto writer = WalWriter::Open(path_, 7);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (const std::string& payload : payloads) {
      ASSERT_TRUE(writer->Append(payload).ok());
    }
  }

  fs::path dir_;
  std::string path_;
};

// ------------------------------------------------------------ Naming.

TEST(WalNamingTest, FileNameRoundTrips) {
  for (uint64_t gen : {uint64_t{0}, uint64_t{1}, uint64_t{42},
                       uint64_t{9999999999999}, UINT64_MAX}) {
    uint64_t parsed = 0;
    ASSERT_TRUE(ParseWalFileName(WalFileName(gen), &parsed)) << gen;
    EXPECT_EQ(parsed, gen);
  }
}

TEST(WalNamingTest, ParseRejectsForeignNames) {
  uint64_t parsed = 0;
  for (const char* name :
       {"", "wal-.log", "wal-12x4.log", "wal-123.txt", "gen-0000000000001.snap",
        "wal-0000000000001.log.tmp", "xwal-0000000000001.log",
        "wal-99999999999999999999999999.log"}) {
    EXPECT_FALSE(ParseWalFileName(name, &parsed)) << name;
  }
}

// ---------------------------------------------------------- Contracts.

TEST_F(WalTest, FreshSegmentHasVerifiedHeaderAndNoRecords) {
  WriteSegment({});
  auto contents = ReadWal(path_);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_EQ(contents->base_generation, 7u);
  EXPECT_TRUE(contents->records.empty());
  EXPECT_FALSE(contents->truncated);
  EXPECT_EQ(contents->valid_bytes, fs::file_size(path_));
}

TEST_F(WalTest, AppendReadRoundTripIsBitIdentical) {
  const std::vector<std::string> payloads = {
      "first", std::string(1, '\0'), std::string(4096, 'x'),
      std::string("embedded\0nul\xffhigh", 17), ""};
  WriteSegment(payloads);
  auto contents = ReadWal(path_);
  ASSERT_TRUE(contents.ok());
  EXPECT_FALSE(contents->truncated);
  ASSERT_EQ(contents->records.size(), payloads.size());
  for (size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(contents->records[i], payloads[i]) << "record " << i;
  }
}

TEST_F(WalTest, ReopenAppendsAfterExistingRecords) {
  WriteSegment({"one", "two"});
  {
    auto writer = WalWriter::Open(path_, 7);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    ASSERT_TRUE(writer->Append("three").ok());
  }
  auto contents = ReadWal(path_);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->records.size(), 3u);
  EXPECT_EQ(contents->records[2], "three");
}

TEST_F(WalTest, OpenRejectsBaseGenerationMismatch) {
  WriteSegment({"one"});
  auto writer = WalWriter::Open(path_, 8);
  ASSERT_FALSE(writer.ok());
  EXPECT_EQ(writer.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(WalTest, MissingSegmentIsNotFound) {
  auto contents = ReadWal((dir_ / "wal-0000000000099.log").string());
  ASSERT_FALSE(contents.ok());
  EXPECT_EQ(contents.status().code(), StatusCode::kNotFound);
}

TEST_F(WalTest, TornTailShortensThePrefixAndRepairs) {
  WriteSegment({"alpha", "beta", "gamma"});
  const std::string intact = ReadFileBytes(path_);
  // Cut the file mid-way through the last record's payload.
  WriteFileBytes(path_, intact.substr(0, intact.size() - 3));

  auto contents = ReadWal(path_);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->truncated);
  ASSERT_EQ(contents->records.size(), 2u);
  EXPECT_EQ(contents->records[0], "alpha");
  EXPECT_EQ(contents->records[1], "beta");
  EXPECT_LT(contents->valid_bytes, fs::file_size(path_));

  // Repair: truncate to the verified prefix, reopen, keep appending.
  ASSERT_TRUE(TruncateWal(path_, contents->valid_bytes).ok());
  auto writer = WalWriter::Open(path_, 7);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE(writer->Append("delta").ok());
  auto repaired = ReadWal(path_);
  ASSERT_TRUE(repaired.ok());
  EXPECT_FALSE(repaired->truncated);
  ASSERT_EQ(repaired->records.size(), 3u);
  EXPECT_EQ(repaired->records[2], "delta");
}

TEST_F(WalTest, CorruptHeaderYieldsEmptyInvalidSegment) {
  WriteSegment({"alpha"});
  std::string bytes = ReadFileBytes(path_);
  bytes[3] ^= 0x40;  // Inside the magic.
  WriteFileBytes(path_, bytes);
  auto contents = ReadWal(path_);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->truncated);
  EXPECT_TRUE(contents->records.empty());
  EXPECT_EQ(contents->valid_bytes, 0u);
}

// --------------------------------------------- Writer fault sites.

TEST_F(WalTest, ShortWriteFaultLeavesRepairableTornRecord) {
  if (!fault::CompiledIn()) {
    GTEST_SKIP() << "fault injection compiled out (plain Release build)";
  }
  WriteSegment({"durable"});
  auto writer = WalWriter::Open(path_, 7);
  ASSERT_TRUE(writer.ok());

  fault::Arm("storage.wal_short_write", 1);
  auto failed = writer->Append("torn away");
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(fault::HitCount("storage.wal_short_write"), 1u)
      << "the site must actually be reachable";
  // The writer is broken from here on: no silent resumption after an
  // append whose durability is unknown.
  EXPECT_FALSE(writer->is_open());
  EXPECT_EQ(writer->Append("after").code(), StatusCode::kFailedPrecondition);

  // On disk: the acknowledged record survives, the torn one is the
  // invalid tail that recovery truncates.
  auto contents = ReadWal(path_);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->truncated);
  ASSERT_EQ(contents->records.size(), 1u);
  EXPECT_EQ(contents->records[0], "durable");
  ASSERT_TRUE(TruncateWal(path_, contents->valid_bytes).ok());
  auto reopened = WalWriter::Open(path_, 7);
  ASSERT_TRUE(reopened.ok());
  ASSERT_TRUE(reopened->Append("recovered").ok());
}

TEST_F(WalTest, FsyncFaultRollsBackToAcknowledgedPrefix) {
  if (!fault::CompiledIn()) {
    GTEST_SKIP() << "fault injection compiled out (plain Release build)";
  }
  WriteSegment({"durable"});
  const uint64_t acknowledged = fs::file_size(path_);
  auto writer = WalWriter::Open(path_, 7);
  ASSERT_TRUE(writer.ok());

  fault::Arm("storage.wal_fsync", 1);
  ASSERT_FALSE(writer->Append("lost in the page cache").ok());
  EXPECT_EQ(fault::HitCount("storage.wal_fsync"), 1u);
  EXPECT_FALSE(writer->is_open());

  // Fail-safe contract: the durable file holds exactly the acknowledged
  // prefix — no unacknowledged record can surface after a crash.
  EXPECT_EQ(fs::file_size(path_), acknowledged);
  auto contents = ReadWal(path_);
  ASSERT_TRUE(contents.ok());
  EXPECT_FALSE(contents->truncated);
  ASSERT_EQ(contents->records.size(), 1u);
  EXPECT_EQ(contents->records[0], "durable");
}

// ------------------------------------------------------------- Fuzzer.

TEST_F(WalTest, CorruptionFuzzerNeverBreaksThePrefixContract) {
  // Build one realistic segment: varied record sizes, binary payloads.
  std::vector<std::string> payloads;
  std::mt19937_64 seed_rng(20260808);
  for (int i = 0; i < 12; ++i) {
    std::string payload;
    const size_t len = 1 + seed_rng() % 200;
    payload.reserve(len);
    for (size_t b = 0; b < len; ++b) {
      payload.push_back(static_cast<char>(seed_rng() & 0xff));
    }
    payloads.push_back(std::move(payload));
  }
  WriteSegment(payloads);
  const std::string intact = ReadFileBytes(path_);
  const std::string mutant_path = (dir_ / "mutant.log").string();

  constexpr int kCases = 10000;
  int truncations_observed = 0;
  for (int c = 0; c < kCases; ++c) {
    std::mt19937_64 rng(0x5eedull * 1000003ull + static_cast<uint64_t>(c));
    std::string bytes = intact;
    switch (rng() % 3) {
      case 0: {  // Single bit flip anywhere in the file.
        const size_t offset = rng() % bytes.size();
        bytes[offset] = static_cast<char>(
            static_cast<unsigned char>(bytes[offset]) ^ (1u << (rng() % 8)));
        break;
      }
      case 1:  // Truncation at an arbitrary byte boundary.
        bytes.resize(rng() % (bytes.size() + 1));
        break;
      default: {  // Junk extension (a crashed appender's droppings).
        const size_t junk = 1 + rng() % 64;
        for (size_t b = 0; b < junk; ++b) {
          bytes.push_back(static_cast<char>(rng() & 0xff));
        }
        break;
      }
    }
    WriteFileBytes(mutant_path, bytes);

    auto contents = ReadWal(mutant_path);
    if (!contents.ok()) {
      // Only an unopenable file may fail; a mutated-but-present one
      // must always parse to some valid prefix.
      ADD_FAILURE() << "case " << c << ": " << contents.status().ToString();
      continue;
    }
    if (contents->truncated) ++truncations_observed;
    ASSERT_LE(contents->valid_bytes, bytes.size()) << "case " << c;
    ASSERT_LE(contents->records.size(), payloads.size()) << "case " << c;
    for (size_t i = 0; i < contents->records.size(); ++i) {
      ASSERT_EQ(contents->records[i], payloads[i])
          << "case " << c << ": surviving record " << i
          << " must be bit-identical to the original";
    }
    // Every surviving prefix must be repairable: truncate + reopen at
    // the original base generation succeeds whenever the header held.
    if (contents->base_generation == 7u && contents->valid_bytes > 0) {
      ASSERT_TRUE(TruncateWal(mutant_path, contents->valid_bytes).ok())
          << "case " << c;
      auto writer = WalWriter::Open(mutant_path, 7);
      ASSERT_TRUE(writer.ok()) << "case " << c << ": "
                               << writer.status().ToString();
    }
  }
  // The sweep must actually exercise the corruption paths, not pick
  // degenerate mutations.
  EXPECT_GT(truncations_observed, kCases / 4);
}

}  // namespace
}  // namespace opinedb::storage
