// Unit tests for storage::SnapshotStore: the framed container format
// (encode/decode, checksum coverage), generation file naming, and the
// commit / recover / garbage-collect protocol over a real directory.
// The fault-injection crash sweep and the randomized corruption fuzzer
// live in crash_consistency_test.cc; this file covers the deterministic
// contracts.
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storage/checksum.h"
#include "storage/pins.h"
#include "storage/snapshot_store.h"
#include "storage/wal.h"

namespace opinedb::storage {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test directory under the gtest temp root, removed on
/// teardown so repeated runs start clean.
class SnapshotStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("snapshot_store_test_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string dir() const { return dir_.string(); }

  static std::vector<SnapshotSection> SampleSections() {
    std::vector<SnapshotSection> sections(2);
    sections[0].name = "schema";
    sections[0].payload = "opinedb-schema 1\npretend-schema-bytes";
    sections[1].name = "summaries";
    // Binary-ish payload: embedded NULs and high bytes must survive.
    sections[1].payload = std::string("\x00\x01\xfe\xff binary", 12);
    return sections;
  }

  static std::string ReadFile(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    return bytes;
  }

  static void WriteFile(const fs::path& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << path;
  }

  fs::path GenPath(uint64_t generation) const {
    return dir_ / SnapshotStore::GenerationFileName(generation);
  }

  fs::path dir_;
};

void ExpectSectionsEqual(const std::vector<SnapshotSection>& want,
                         const std::vector<SnapshotSection>& got) {
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].name, got[i].name);
    EXPECT_EQ(want[i].payload, got[i].payload);
  }
}

// ------------------------------------------------------------ Framing.

TEST_F(SnapshotStoreTest, ContainerRoundTrips) {
  const auto sections = SampleSections();
  const std::string bytes = SnapshotStore::EncodeContainer(sections);
  auto decoded = SnapshotStore::DecodeContainer(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectSectionsEqual(sections, *decoded);
}

TEST_F(SnapshotStoreTest, EmptyContainerRoundTrips) {
  const std::string bytes = SnapshotStore::EncodeContainer({});
  auto decoded = SnapshotStore::DecodeContainer(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->empty());
}

TEST_F(SnapshotStoreTest, EmptyPayloadRoundTrips) {
  std::vector<SnapshotSection> sections(1);
  sections[0].name = "empty";
  auto decoded =
      SnapshotStore::DecodeContainer(SnapshotStore::EncodeContainer(sections));
  ASSERT_TRUE(decoded.ok());
  ExpectSectionsEqual(sections, *decoded);
}

TEST_F(SnapshotStoreTest, EveryTruncationIsACleanError) {
  const std::string full = SnapshotStore::EncodeContainer(SampleSections());
  for (size_t length = 0; length < full.size(); ++length) {
    EXPECT_NO_THROW({
      auto decoded = SnapshotStore::DecodeContainer(full.substr(0, length));
      EXPECT_FALSE(decoded.ok()) << "prefix length " << length;
    });
  }
}

TEST_F(SnapshotStoreTest, EverySingleBitFlipIsDetected) {
  // Every byte of the container — magic, version, lengths, payloads,
  // CRC fields themselves — is covered by some checksum (CRC32C detects
  // all single-bit errors), so an exhaustive flip sweep must reject
  // every mutant outright.
  const std::string full = SnapshotStore::EncodeContainer(SampleSections());
  for (size_t offset = 0; offset < full.size(); ++offset) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = full;
      mutated[offset] = static_cast<char>(
          static_cast<unsigned char>(mutated[offset]) ^ (1u << bit));
      auto decoded = SnapshotStore::DecodeContainer(mutated);
      EXPECT_FALSE(decoded.ok())
          << "flip survived at offset " << offset << " bit " << bit;
    }
  }
}

TEST_F(SnapshotStoreTest, TrailingBytesAreRejected) {
  std::string bytes = SnapshotStore::EncodeContainer(SampleSections());
  bytes += "junk";
  EXPECT_FALSE(SnapshotStore::DecodeContainer(bytes).ok());
}

TEST_F(SnapshotStoreTest, BadMagicIsRejected) {
  std::string bytes = SnapshotStore::EncodeContainer(SampleSections());
  bytes[0] = 'X';
  auto decoded = SnapshotStore::DecodeContainer(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kParseError);
}

TEST_F(SnapshotStoreTest, HonestFutureVersionIsNotSupported) {
  // Patch the version to 2 and recompute the header CRC, so the header
  // verifies: this is a genuine future format, distinguishable from a
  // flipped version byte (which fails the CRC and reads as corruption).
  std::string bytes = SnapshotStore::EncodeContainer(SampleSections());
  bytes[8] = 2;  // Little-endian version word follows the 8-byte magic.
  const uint32_t crc = MaskCrc(Crc32c(bytes.data(), 12));
  for (int i = 0; i < 4; ++i) {
    bytes[12 + i] = static_cast<char>((crc >> (8 * i)) & 0xff);
  }
  auto decoded = SnapshotStore::DecodeContainer(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kNotSupported);
}

// ------------------------------------------------------- File naming.

TEST_F(SnapshotStoreTest, GenerationFileNamesSortAndParse) {
  EXPECT_EQ(SnapshotStore::GenerationFileName(7), "gen-0000000000007.snap");
  // Zero-padding: lexicographic order must equal numeric order.
  EXPECT_LT(SnapshotStore::GenerationFileName(9),
            SnapshotStore::GenerationFileName(10));
  uint64_t generation = 0;
  EXPECT_TRUE(SnapshotStore::ParseGenerationFileName("gen-0000000000042.snap",
                                                     &generation));
  EXPECT_EQ(generation, 42u);
  for (uint64_t g : {uint64_t{1}, uint64_t{999}, uint64_t{1} << 40}) {
    ASSERT_TRUE(SnapshotStore::ParseGenerationFileName(
        SnapshotStore::GenerationFileName(g), &generation));
    EXPECT_EQ(generation, g);
  }
}

TEST_F(SnapshotStoreTest, NonGenerationNamesAreRejected) {
  uint64_t generation = 0;
  for (const char* name :
       {"MANIFEST", "MANIFEST.tmp", "gen-.snap", "gen-12.tmp",
        "gen-0000000000001.snap.tmp", "gen-12x4.snap", "notes.txt",
        "gen-99999999999999999999999999.snap"}) {
    EXPECT_FALSE(SnapshotStore::ParseGenerationFileName(name, &generation))
        << name;
  }
}

// ------------------------------------------------ Commit and recover.

TEST_F(SnapshotStoreTest, RecoverOnMissingDirectoryIsNotFound) {
  SnapshotStore store(dir());
  auto recovered = store.Recover();
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(store.ListGenerations().empty());
}

TEST_F(SnapshotStoreTest, CommitThenRecoverRoundTrips) {
  SnapshotStore store(dir());
  const auto sections = SampleSections();
  auto committed = store.Commit(sections);
  ASSERT_TRUE(committed.ok()) << committed.status().ToString();
  EXPECT_EQ(*committed, 1u);

  auto recovered = store.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->generation, 1u);
  EXPECT_EQ(recovered->skipped_generations, 0u);
  EXPECT_EQ(recovered->manifest_generation, 1u);
  ExpectSectionsEqual(sections, recovered->sections);
  ASSERT_NE(recovered->Find("schema"), nullptr);
  EXPECT_EQ(*recovered->Find("schema"), sections[0].payload);
  EXPECT_EQ(recovered->Find("no-such-section"), nullptr);
}

TEST_F(SnapshotStoreTest, NewestGenerationWins) {
  SnapshotStore store(dir());
  auto first = SampleSections();
  ASSERT_TRUE(store.Commit(first).ok());
  auto second = SampleSections();
  second[0].payload = "newer schema";
  ASSERT_TRUE(store.Commit(second).ok());

  EXPECT_EQ(store.ListGenerations(), (std::vector<uint64_t>{1, 2}));
  auto recovered = store.Recover();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->generation, 2u);
  EXPECT_EQ(recovered->manifest_generation, 2u);
  ExpectSectionsEqual(second, recovered->sections);
}

TEST_F(SnapshotStoreTest, TruncatedNewestFallsBackToOlder) {
  SnapshotStore store(dir());
  const auto first = SampleSections();
  ASSERT_TRUE(store.Commit(first).ok());
  auto second = SampleSections();
  second[1].payload = "changed";
  ASSERT_TRUE(store.Commit(second).ok());

  // Torn write of gen 2: keep only half the file.
  const std::string bytes = ReadFile(GenPath(2));
  WriteFile(GenPath(2), bytes.substr(0, bytes.size() / 2));

  auto recovered = store.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->generation, 1u);
  EXPECT_EQ(recovered->skipped_generations, 1u);
  // The manifest still (correctly) names gen 2; recovery overrules it.
  EXPECT_EQ(recovered->manifest_generation, 2u);
  ExpectSectionsEqual(first, recovered->sections);
}

TEST_F(SnapshotStoreTest, MissingManifestStillRecovers) {
  SnapshotStore store(dir());
  const auto sections = SampleSections();
  ASSERT_TRUE(store.Commit(sections).ok());
  std::error_code ec;
  fs::remove(dir_ / "MANIFEST", ec);
  ASSERT_FALSE(ec);

  auto recovered = store.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->generation, 1u);
  EXPECT_EQ(recovered->manifest_generation, 0u);
  ExpectSectionsEqual(sections, recovered->sections);
}

TEST_F(SnapshotStoreTest, CorruptManifestIsOnlyAHint) {
  SnapshotStore store(dir());
  ASSERT_TRUE(store.Commit(SampleSections()).ok());
  WriteFile(dir_ / "MANIFEST", "not a container at all");
  auto recovered = store.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->generation, 1u);
  EXPECT_EQ(recovered->manifest_generation, 0u);
}

TEST_F(SnapshotStoreTest, AllGenerationsCorruptIsDataLoss) {
  SnapshotStore store(dir());
  ASSERT_TRUE(store.Commit(SampleSections()).ok());
  ASSERT_TRUE(store.Commit(SampleSections()).ok());
  for (uint64_t g : {1u, 2u}) {
    std::string bytes = ReadFile(GenPath(g));
    bytes[bytes.size() / 2] ^= 0x01;
    WriteFile(GenPath(g), bytes);
  }
  auto recovered = store.Recover();
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(recovered.status().message().find("2 snapshot generation(s)"),
            std::string::npos)
      << recovered.status().ToString();
}

TEST_F(SnapshotStoreTest, StrayTmpFilesAreIgnoredAndSwept) {
  SnapshotStore store(dir());
  ASSERT_TRUE(store.Commit(SampleSections()).ok());
  // Droppings of a crashed saver: recovery must ignore them entirely.
  WriteFile(dir_ / "gen-0000000000002.snap.tmp", "half-written garbage");
  WriteFile(dir_ / "MANIFEST.tmp", "more garbage");

  auto recovered = store.Recover();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->generation, 1u);
  EXPECT_EQ(recovered->skipped_generations, 0u);

  // The next commit sweeps them and proceeds.
  auto committed = store.Commit(SampleSections());
  ASSERT_TRUE(committed.ok());
  EXPECT_EQ(*committed, 2u);
  EXPECT_FALSE(fs::exists(dir_ / "gen-0000000000002.snap.tmp"));
  EXPECT_FALSE(fs::exists(dir_ / "MANIFEST.tmp"));
}

TEST_F(SnapshotStoreTest, CorruptGenerationIsNeverOverwritten) {
  SnapshotStore store(dir());
  ASSERT_TRUE(store.Commit(SampleSections()).ok());
  std::string bytes = ReadFile(GenPath(1));
  bytes[bytes.size() - 1] ^= 0x80;
  WriteFile(GenPath(1), bytes);
  // The next commit must allocate gen 2, not reuse the corrupt slot 1 —
  // forensics (and the fallback chain) keep the damaged file intact.
  auto committed = store.Commit(SampleSections());
  ASSERT_TRUE(committed.ok());
  EXPECT_EQ(*committed, 2u);
}

TEST_F(SnapshotStoreTest, GarbageCollectKeepsNewest) {
  SnapshotStore store(dir());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store.Commit(SampleSections()).ok());
  }
  ASSERT_TRUE(store.GarbageCollect(2).ok());
  EXPECT_EQ(store.ListGenerations(), (std::vector<uint64_t>{4, 5}));
  EXPECT_TRUE(fs::exists(dir_ / "MANIFEST"));
  auto recovered = store.Recover();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->generation, 5u);
  // keep >= current count is a no-op.
  ASSERT_TRUE(store.GarbageCollect(10).ok());
  EXPECT_EQ(store.ListGenerations().size(), 2u);
}

TEST_F(SnapshotStoreTest, GarbageCollectZeroRetainsServedGeneration) {
  SnapshotStore store(dir());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(store.Commit(SampleSections()).ok());
  }
  // Regression: GarbageCollect(0) used to delete every generation,
  // including the one Recover() serves. It must retain the newest
  // generation that verifies.
  ASSERT_TRUE(store.GarbageCollect(0).ok());
  EXPECT_EQ(store.ListGenerations(), (std::vector<uint64_t>{3}));
  auto recovered = store.Recover();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->generation, 3u);
}

TEST_F(SnapshotStoreTest, GarbageCollectNeverDeletesLastGoodGeneration) {
  SnapshotStore store(dir());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(store.Commit(SampleSections()).ok());
  }
  // Corrupt the two newest generations: a small `keep` must not retain
  // only the corrupt tail while deleting the last generation that
  // actually decodes.
  for (uint64_t g : {3u, 4u}) {
    std::string bytes = ReadFile(GenPath(g));
    bytes[bytes.size() / 2] ^= 0x01;
    WriteFile(GenPath(g), bytes);
  }
  ASSERT_TRUE(store.GarbageCollect(1).ok());
  const std::vector<uint64_t> kept = store.ListGenerations();
  EXPECT_NE(std::find(kept.begin(), kept.end(), 2u), kept.end())
      << "the newest verifying generation must survive GC";
  auto recovered = store.Recover();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->generation, 2u);
}

TEST_F(SnapshotStoreTest, GarbageCollectNeverDeletesPinnedGeneration) {
  SnapshotStore store(dir());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store.Commit(SampleSections()).ok());
  }
  // Regression: a lagging follower holds a pin on the generation it was
  // promised for snapshot catch-up; GC must not delete it out from
  // under the in-flight transfer regardless of `keep`.
  GenerationPins pins;
  pins.Pin(2);
  ASSERT_TRUE(store.GarbageCollect(1, &pins).ok());
  std::vector<uint64_t> kept = store.ListGenerations();
  EXPECT_NE(std::find(kept.begin(), kept.end(), 2u), kept.end())
      << "a pinned generation must survive GC";
  EXPECT_NE(std::find(kept.begin(), kept.end(), 5u), kept.end());
  EXPECT_EQ(std::find(kept.begin(), kept.end(), 1u), kept.end())
      << "unpinned, unreferenced generations are still collected";

  // Once the follower releases the pin, the next sweep collects it.
  pins.Unpin(2);
  ASSERT_TRUE(store.GarbageCollect(1, &pins).ok());
  kept = store.ListGenerations();
  EXPECT_EQ(std::find(kept.begin(), kept.end(), 2u), kept.end());
  EXPECT_EQ(kept, (std::vector<uint64_t>{5}));
}

TEST_F(SnapshotStoreTest, GarbageCollectNeverOrphansAWalSegment) {
  SnapshotStore store(dir());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(store.Commit(SampleSections()).ok());
  }
  // Regression: wal-2.log means "generation 2 plus this tail is a
  // recoverable state"; deleting gen-2 while the segment lives would
  // orphan every record in it. The base-generation scan must retain it
  // even with no pin registry at all.
  WriteFile(dir_ / WalFileName(2), "placeholder");
  ASSERT_TRUE(store.GarbageCollect(1, nullptr).ok());
  std::vector<uint64_t> kept = store.ListGenerations();
  EXPECT_NE(std::find(kept.begin(), kept.end(), 2u), kept.end())
      << "a generation referenced by a live WAL segment must survive";
  EXPECT_EQ(std::find(kept.begin(), kept.end(), 1u), kept.end());

  // Retiring the segment releases the reference.
  fs::remove(dir_ / WalFileName(2));
  ASSERT_TRUE(store.GarbageCollect(1, nullptr).ok());
  kept = store.ListGenerations();
  EXPECT_EQ(kept, (std::vector<uint64_t>{4}));
}

TEST_F(SnapshotStoreTest, AdoptSnapshotVerifiesBeforeWritingAndIsIdempotent) {
  const std::string bytes =
      SnapshotStore::EncodeContainer(SampleSections());
  SnapshotStore store(dir());

  // Corrupt bytes never touch the directory.
  std::string corrupt = bytes;
  corrupt[corrupt.size() / 2] ^= 0x01;
  const Status refused = store.AdoptSnapshot(7, corrupt);
  ASSERT_FALSE(refused.ok());
  EXPECT_FALSE(fs::exists(GenPath(7)));

  ASSERT_TRUE(store.AdoptSnapshot(7, bytes).ok());
  auto recovered = store.Recover();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->generation, 7u);
  EXPECT_EQ(recovered->manifest_generation, 7u)
      << "adoption must move the MANIFEST like a commit does";
  EXPECT_EQ(ReadFile(GenPath(7)), bytes) << "adopted bytes are verbatim";

  // Idempotent: re-adopting the same generation is a no-op, and a
  // corrupted on-disk copy is replaced by the verified bytes.
  ASSERT_TRUE(store.AdoptSnapshot(7, bytes).ok());
  WriteFile(GenPath(7), corrupt);
  ASSERT_TRUE(store.AdoptSnapshot(7, bytes).ok());
  EXPECT_EQ(ReadFile(GenPath(7)), bytes);
}

TEST_F(SnapshotStoreTest, CommitRejectsBadSectionNames) {
  SnapshotStore store(dir());
  std::vector<SnapshotSection> sections(1);
  sections[0].name = "";
  auto committed = store.Commit(sections);
  ASSERT_FALSE(committed.ok());
  EXPECT_EQ(committed.status().code(), StatusCode::kInvalidArgument);
  sections[0].name = std::string(4096, 'n');
  EXPECT_FALSE(store.Commit(sections).ok());
}

// ---------------------------------------------------------- Checksums.

TEST_F(SnapshotStoreTest, Crc32cKnownAnswers) {
  // RFC 3720 test vectors for CRC32C (Castagnoli).
  EXPECT_EQ(Crc32c("", 0), 0x00000000u);
  const unsigned char zeros[32] = {0};
  EXPECT_EQ(Crc32c(zeros, sizeof(zeros)), 0x8a9136aau);
  unsigned char ones[32];
  for (auto& b : ones) b = 0xff;
  EXPECT_EQ(Crc32c(ones, sizeof(ones)), 0x62a8ab43u);
  unsigned char ascending[32];
  for (int i = 0; i < 32; ++i) ascending[i] = static_cast<unsigned char>(i);
  EXPECT_EQ(Crc32c(ascending, sizeof(ascending)), 0x46dd794eu);
  EXPECT_EQ(Crc32c(std::string_view("123456789")), 0xe3069283u);
}

TEST_F(SnapshotStoreTest, Crc32cExtendMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32c(data.data(), split);
    crc = Crc32cExtend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, Crc32c(data.data(), data.size())) << "split " << split;
  }
}

TEST_F(SnapshotStoreTest, CrcMaskRoundTrips) {
  for (uint32_t crc : {0u, 1u, 0xdeadbeefu, 0xffffffffu, 0xa282ead8u}) {
    EXPECT_EQ(UnmaskCrc(MaskCrc(crc)), crc);
    // Masking must move the value (that is its whole point: a CRC
    // stored alongside the data it covers must not equal it).
    EXPECT_NE(MaskCrc(crc), crc);
  }
}

}  // namespace
}  // namespace opinedb::storage
