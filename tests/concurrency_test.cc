// Concurrency and determinism tests for the parallel execution layer:
// multi-threaded query execution must be bit-identical to serial on both
// integration fixtures, the thread-safe DegreeCache must be coherent
// under concurrent hammering, and the ThreadPool itself must partition
// deterministically. Run these under -DOPINEDB_SANITIZE=thread — they
// are the race-detection gate (see docs/SANITIZERS.md).
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/degree_cache.h"
#include "datagen/domain_spec.h"
#include "eval/experiment.h"
#include "obs/trace.h"

namespace opinedb {
namespace {

// ------------------------------------------------------------ ThreadPool.

TEST(ThreadPoolTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(1000);
  pool.ParallelFor(0, counts.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) counts[i].fetch_add(1);
  });
  for (const auto& count : counts) EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, EmptyRangeIsANoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(5, 5, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  const auto caller = std::this_thread::get_id();
  pool.ParallelFor(0, 100, [&](size_t, size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.ParallelFor(0, 16, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      // Nested loop from (possibly) a worker thread: must run inline
      // rather than waiting on the already-busy queue.
      pool.ParallelFor(0, 8, [&](size_t b, size_t e) {
        total.fetch_add(static_cast<int>(e - b));
      });
    }
  });
  EXPECT_EQ(total.load(), 16 * 8);
}

TEST(ThreadPoolTest, ConcurrentLoopsFromManyThreads) {
  ThreadPool pool(4);
  std::vector<std::thread> callers;
  std::atomic<int> total{0};
  for (int t = 0; t < 8; ++t) {
    callers.emplace_back([&] {
      pool.ParallelFor(0, 100, [&](size_t b, size_t e) {
        total.fetch_add(static_cast<int>(e - b));
      });
    });
  }
  for (auto& caller : callers) caller.join();
  EXPECT_EQ(total.load(), 8 * 100);
}

TEST(ThreadPoolTest, PropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 100,
                       [&](size_t begin, size_t) {
                         if (begin == 0) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ResolveThreads) {
  EXPECT_EQ(ThreadPool::ResolveThreads(3), 3u);
  EXPECT_GE(ThreadPool::ResolveThreads(0), 1u);
}

// ----------------------------------------------- Determinism fixtures.

class ConcurrencyTest : public ::testing::TestWithParam<const char*> {
 protected:
  static void SetUpTestSuite() {
    {
      eval::BuildOptions options;
      options.generator.num_entities = 30;
      options.generator.min_reviews_per_entity = 10;
      options.generator.max_reviews_per_entity = 20;
      options.generator.seed = 21;
      options.seed = 21;
      options.extractor_training_sentences = 400;
      options.predicate_pool_size = 60;
      options.membership_training_tuples = 500;
      hotel_ = new eval::DomainArtifacts(
          eval::BuildArtifacts(datagen::HotelDomain(), options));
    }
    {
      eval::BuildOptions options;
      options.generator.num_entities = 25;
      options.generator.min_reviews_per_entity = 8;
      options.generator.max_reviews_per_entity = 16;
      options.generator.seed = 22;
      options.seed = 22;
      options.extractor_training_sentences = 400;
      options.predicate_pool_size = 60;
      options.membership_training_tuples = 500;
      restaurant_ = new eval::DomainArtifacts(
          eval::BuildArtifacts(datagen::RestaurantDomain(), options));
    }
  }

  static void TearDownTestSuite() {
    delete hotel_;
    hotel_ = nullptr;
    delete restaurant_;
    restaurant_ = nullptr;
  }

  static core::OpineDb& Fixture(const std::string& name) {
    return name == "hotel" ? *hotel_->db : *restaurant_->db;
  }

  static std::vector<std::string> Queries(const std::string& name) {
    if (name == "hotel") {
      return {
          "select * from hotels where \"clean room\" limit 10",
          "select * from hotels where \"clean room\" and \"friendly "
          "staff\" limit 8",
          "select * from hotels where \"comfortable bed\" or \"quiet "
          "street\" limit 30",
          "select * from hotels limit 5",
      };
    }
    return {
        "select * from restaurants where \"delicious food\" limit 10",
        "select * from restaurants where \"delicious food\" and \"great "
        "service\" limit 8",
        "select * from restaurants where \"cozy atmosphere\" or \"fast "
        "service\" limit 25",
    };
  }

  static eval::DomainArtifacts* hotel_;
  static eval::DomainArtifacts* restaurant_;
};

eval::DomainArtifacts* ConcurrencyTest::hotel_ = nullptr;
eval::DomainArtifacts* ConcurrencyTest::restaurant_ = nullptr;

// Bit-identical means EXPECT_EQ on the raw doubles — no tolerance.
void ExpectIdenticalResults(const core::QueryResult& serial,
                            const core::QueryResult& parallel) {
  ASSERT_EQ(serial.results.size(), parallel.results.size());
  for (size_t i = 0; i < serial.results.size(); ++i) {
    EXPECT_EQ(serial.results[i].entity, parallel.results[i].entity);
    EXPECT_EQ(serial.results[i].entity_name, parallel.results[i].entity_name);
    EXPECT_EQ(serial.results[i].score, parallel.results[i].score);
  }
}

TEST_P(ConcurrencyTest, ParallelQueriesBitIdenticalToSerial) {
  core::OpineDb& db = Fixture(GetParam());
  for (const auto& sql : Queries(GetParam())) {
    db.SetNumThreads(1);
    auto serial = db.Execute(sql);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    EXPECT_EQ(serial->stats.threads_used, 1u);
    for (size_t threads : {2, 4, 8}) {
      db.SetNumThreads(threads);
      auto parallel = db.Execute(sql);
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      EXPECT_EQ(parallel->stats.threads_used, threads);
      ExpectIdenticalResults(*serial, *parallel);
    }
  }
  db.SetNumThreads(1);
}

TEST_P(ConcurrencyTest, DegreeCacheContentsBitIdenticalToSerial) {
  core::OpineDb& db = Fixture(GetParam());
  db.SetNumThreads(1);
  core::DegreeCache serial_cache(&db);
  ASSERT_GT(serial_cache.PrecomputeMarkers(), 0u);

  db.SetNumThreads(4);
  core::DegreeCache parallel_cache(&db);
  EXPECT_EQ(parallel_cache.PrecomputeMarkers(), serial_cache.size());
  EXPECT_EQ(parallel_cache.size(), serial_cache.size());
  for (const auto& attribute : db.schema().attributes) {
    for (const auto& marker : attribute.summary_type.markers) {
      ASSERT_TRUE(parallel_cache.Contains(marker)) << marker;
      const auto& serial = serial_cache.Degrees(marker);
      const auto& parallel = parallel_cache.Degrees(marker);
      ASSERT_EQ(serial.size(), parallel.size());
      for (size_t e = 0; e < serial.size(); ++e) {
        EXPECT_EQ(serial[e], parallel[e]) << marker << " entity " << e;
      }
    }
  }
  db.SetNumThreads(1);
}

TEST_P(ConcurrencyTest, ExecutionStatsArepopulated) {
  core::OpineDb& db = Fixture(GetParam());
  db.SetNumThreads(2);
  auto result = db.Execute(Queries(GetParam()).front());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.threads_used, 2u);
  EXPECT_EQ(result->stats.entities_scored, db.corpus().num_entities());
  // Without an attached cache every subjective list is a miss.
  EXPECT_EQ(result->stats.cache_hits, 0u);
  EXPECT_EQ(result->stats.cache_misses, 1u);
  EXPECT_GE(result->stats.total_ms, 0.0);
  EXPECT_GE(result->stats.scoring_ms, 0.0);
  db.SetNumThreads(1);
}

TEST_P(ConcurrencyTest, AttachedCacheServesHitsWithIdenticalResults) {
  core::OpineDb& db = Fixture(GetParam());
  db.SetNumThreads(2);
  const auto sql = Queries(GetParam()).front();
  auto uncached = db.Execute(sql);
  ASSERT_TRUE(uncached.ok());

  core::DegreeCache cache(&db);
  db.AttachDegreeCache(&cache);
  auto cold = db.Execute(sql);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->stats.cache_misses, 1u);
  auto warm = db.Execute(sql);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->stats.cache_hits, 1u);
  EXPECT_EQ(warm->stats.cache_misses, 0u);
  db.AttachDegreeCache(nullptr);
  db.SetNumThreads(1);

  ExpectIdenticalResults(*uncached, *cold);
  ExpectIdenticalResults(*uncached, *warm);
}

TEST_P(ConcurrencyTest, ReaggregateBitIdenticalAcrossThreadCounts) {
  core::OpineDb& db = Fixture(GetParam());
  const auto sql = Queries(GetParam()).front();
  core::AggregationOptions filtered;
  filtered.min_reviewer_reviews = 2;

  db.SetNumThreads(1);
  db.Reaggregate(filtered);
  auto serial = db.Execute(sql);
  ASSERT_TRUE(serial.ok());

  db.SetNumThreads(4);
  db.Reaggregate(filtered);
  auto parallel = db.Execute(sql);
  ASSERT_TRUE(parallel.ok());
  ExpectIdenticalResults(*serial, *parallel);

  // Restore the default aggregation for other tests.
  db.SetNumThreads(1);
  db.Reaggregate(core::AggregationOptions());
}

TEST_P(ConcurrencyTest, FullTracingPreservesBitIdentityContract) {
  // The observability layer must observe, never perturb: with the span
  // ring buffer on (trace_level=full), parallel execution stays
  // bit-identical to serial. Worker threads see no ambient trace
  // context, so this also exercises the span-free worker path under
  // -DOPINEDB_SANITIZE=thread.
  core::OpineDb& db = Fixture(GetParam());
  db.SetTraceLevel(obs::TraceLevel::kFull);
  for (const auto& sql : Queries(GetParam())) {
    db.SetNumThreads(1);
    auto serial = db.Execute(sql);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    ASSERT_NE(serial->trace, nullptr);
    for (size_t threads : {2, 4, 8}) {
      db.SetNumThreads(threads);
      auto parallel = db.Execute(sql);
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      ExpectIdenticalResults(*serial, *parallel);
      ASSERT_NE(parallel->trace, nullptr);
      EXPECT_FALSE(parallel->trace->Snapshot().empty());
    }
  }
  db.SetTraceLevel(obs::TraceLevel::kOff);
  db.SetNumThreads(1);
}

// ------------------------------------------------------ Cache stress.

TEST_P(ConcurrencyTest, SharedDegreeCacheSurvivesEightThreadHammer) {
  core::OpineDb& db = Fixture(GetParam());
  db.SetNumThreads(4);  // Workers live under the stress threads too.
  core::DegreeCache cache(&db);

  // Overlapping predicate sets: every thread touches every predicate,
  // in a rotated order, so insert races are guaranteed.
  std::vector<std::string> predicates;
  for (const auto& attribute : db.schema().attributes) {
    for (const auto& marker : attribute.summary_type.markers) {
      predicates.push_back(marker);
    }
  }
  ASSERT_GE(predicates.size(), 4u);

  constexpr int kThreads = 8;
  constexpr int kRounds = 3;
  std::vector<std::thread> hammers;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    hammers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (size_t i = 0; i < predicates.size(); ++i) {
          const auto& predicate =
              predicates[(i + static_cast<size_t>(t)) % predicates.size()];
          const auto& degrees = cache.Degrees(predicate);
          if (degrees.size() != db.corpus().num_entities()) {
            failures.fetch_add(1);
          }
          if (!cache.Contains(predicate)) failures.fetch_add(1);
        }
        if (t % 2 == 0) {
          // Concurrent TA queries over the same lists.
          auto top = cache.TopKConjunction(
              {predicates[0], predicates[1 % predicates.size()]}, 3);
          if (top.empty()) failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& hammer : hammers) hammer.join();
  EXPECT_EQ(failures.load(), 0);

  // Coherence after the dust settles: contents equal a serial cache.
  db.SetNumThreads(1);
  core::DegreeCache serial_cache(&db);
  for (const auto& predicate : predicates) {
    const auto& expected = serial_cache.Degrees(predicate);
    const auto& actual = cache.Degrees(predicate);
    ASSERT_EQ(expected.size(), actual.size());
    for (size_t e = 0; e < expected.size(); ++e) {
      EXPECT_EQ(expected[e], actual[e]) << predicate << " entity " << e;
    }
  }
  const auto stats = cache.stats();
  // Every unique predicate was computed at least once and most lookups
  // were served from the cache.
  EXPECT_GE(stats.misses, 1u);
  EXPECT_GT(stats.hits, stats.misses);
}

INSTANTIATE_TEST_SUITE_P(Domains, ConcurrencyTest,
                         ::testing::Values("hotel", "restaurant"));

}  // namespace
}  // namespace opinedb
