// Deterministic fault-injection sweep over the serving path.
//
// Every named site in fault::kSites is armed against every plan shape
// (dense scan, text-fallback scan, filtered scan, cold cached scan,
// warm TA top-k, result/interpretation-cached serving). The contract
// under test:
//
//  - no injected fault ever crashes, hangs, or leaks a query — every
//    Execute returns ok() with sane, finite scores (graceful
//    degradation, DESIGN.md §5e);
//  - a fault that never fires (site armed but off this shape's path, or
//    the N-th hit is never reached) perturbs nothing: results stay
//    bit-identical to the unfaulted run;
//  - after a fault storm the unfaulted path is fully recovered — and in
//    particular the degree cache never retains data computed under a
//    degraded interpretation;
//  - the kSites catalog is live: every site is reached by at least one
//    shape (a stale catalog entry fails the sweep).
//
// The whole file self-skips in builds where OPINEDB_FAULT_INJECTION is
// off (plain Release): the macro compiles to nothing there.
#include <cmath>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache/cache_config.h"
#include "cache/interpretation_cache.h"
#include "cache/result_cache.h"
#include "common/fault.h"
#include "common/string_util.h"
#include "core/degree_cache.h"
#include "core/engine.h"
#include "core/result_json.h"
#include "datagen/domain_spec.h"
#include "eval/experiment.h"
#include "server/http_client.h"
#include "server/server.h"

namespace opinedb {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eval::BuildOptions options;
    options.generator.num_entities = 20;
    options.generator.min_reviews_per_entity = 8;
    options.generator.max_reviews_per_entity = 14;
    options.generator.seed = 51;
    options.seed = 51;
    options.extractor_training_sentences = 400;
    options.predicate_pool_size = 40;
    options.membership_training_tuples = 400;
    artifacts_ = new eval::DomainArtifacts(
        eval::BuildArtifacts(datagen::HotelDomain(), options));
  }

  static void TearDownTestSuite() {
    delete artifacts_;
    artifacts_ = nullptr;
  }

  void SetUp() override {
    if (!fault::CompiledIn()) {
      GTEST_SKIP() << "fault injection compiled out (plain Release build)";
    }
    fault::DisarmAll();
  }

  void TearDown() override { fault::DisarmAll(); }

  static core::OpineDb& db() { return *artifacts_->db; }

  /// Pool predicates whose interpretation carries A.m atoms, so the
  /// feature-scoring sites are on their execution path.
  static std::vector<std::string> AtomPredicates(size_t want) {
    std::vector<std::string> out;
    for (const auto& p : artifacts_->pool) {
      const auto interp = db().interpreter().Interpret(p.text);
      if (interp.method != core::InterpretMethod::kTextFallback &&
          !interp.atoms.empty()) {
        out.push_back(p.text);
        if (out.size() == want) break;
      }
    }
    return out;
  }

  /// A predicate of out-of-vocabulary words: the word2vec stage cannot
  /// cover it, so the query exercises the co-occurrence stage, the
  /// inverted-index scan, and the per-entity text fallback.
  static std::string NonsensePredicate() { return "zorblatt quuxly vibes"; }

  static eval::DomainArtifacts* artifacts_;
};

eval::DomainArtifacts* FaultInjectionTest::artifacts_ = nullptr;

void ExpectBitIdentical(const core::QueryResult& reference,
                        const core::QueryResult& actual) {
  ASSERT_EQ(reference.results.size(), actual.results.size());
  for (size_t i = 0; i < reference.results.size(); ++i) {
    EXPECT_EQ(reference.results[i].entity, actual.results[i].entity);
    EXPECT_EQ(reference.results[i].score, actual.results[i].score);
  }
}

// Degraded results may differ from the unfaulted ranking, but they must
// still be well-formed: finite unit-interval scores in ranking order.
void ExpectSane(const core::QueryResult& run) {
  for (size_t i = 0; i < run.results.size(); ++i) {
    const auto& r = run.results[i];
    EXPECT_TRUE(std::isfinite(r.score));
    EXPECT_GE(r.score, 0.0);
    EXPECT_LE(r.score, 1.0);
    if (i > 0) {
      const auto& prev = run.results[i - 1];
      EXPECT_TRUE(prev.score > r.score ||
                  (prev.score == r.score && prev.entity < r.entity));
    }
  }
}

/// One plan shape: `run(site)` rebuilds the shape's starting state from
/// scratch (fresh cache, unfaulted warm-up), then arms `site` (empty =
/// none) and executes the measured query.
struct Shape {
  std::string name;
  std::function<Result<core::QueryResult>(const std::string& site)> run;
};

std::vector<Shape> MakeShapes(core::OpineDb& db,
                              const std::vector<std::string>& atom_preds,
                              const std::string& nonsense_pred) {
  const std::string dense_sql =
      "select * from hotels where \"" + atom_preds[0] + "\" limit 5";
  const std::string textfb_sql =
      "select * from hotels where \"" + nonsense_pred + "\" limit 5";
  const std::string filtered_sql = "select * from hotels where rating > 2.0 "
                                   "and \"" + atom_preds[0] + "\" limit 5";
  const std::string conj_sql = "select * from hotels where \"" +
                               atom_preds[0] + "\" and \"" + atom_preds[1] +
                               "\" limit 3";
  auto arm = [](const std::string& site) {
    if (!site.empty()) fault::Arm(site, 1);
  };
  auto plain = [&db, arm](std::string sql) {
    return [&db, arm, sql](const std::string& site) {
      db.mutable_options()->force_plan = core::PlanForce::kAuto;
      arm(site);
      return db.Execute(sql);
    };
  };
  std::vector<Shape> shapes;
  shapes.push_back({"dense", plain(dense_sql)});
  shapes.push_back({"text_fallback", plain(textfb_sql)});
  shapes.push_back({"filtered", plain(filtered_sql)});
  shapes.push_back({"cached_cold", [&db, arm, dense_sql](
                                       const std::string& site) {
                      core::DegreeCache cache(&db);
                      db.AttachDegreeCache(&cache);
                      db.mutable_options()->force_plan =
                          core::PlanForce::kAuto;
                      arm(site);
                      auto run = db.Execute(dense_sql);
                      db.AttachDegreeCache(nullptr);
                      return run;
                    }});
  shapes.push_back({"ta_warm", [&db, arm, conj_sql](
                                   const std::string& site) {
                      core::DegreeCache cache(&db);
                      db.AttachDegreeCache(&cache);
                      db.mutable_options()->force_plan =
                          core::PlanForce::kAuto;
                      auto warm = db.Execute(conj_sql);  // Fills both lists.
                      EXPECT_TRUE(warm.ok()) << warm.status().ToString();
                      db.mutable_options()->force_plan =
                          core::PlanForce::kTaTopK;
                      arm(site);
                      auto run = db.Execute(conj_sql);
                      db.mutable_options()->force_plan =
                          core::PlanForce::kAuto;
                      db.AttachDegreeCache(nullptr);
                      return run;
                    }});
  shapes.push_back(
      {"result_cached", [&db, arm, dense_sql](const std::string& site) {
         // Fresh result + interpretation caches; the first execution
         // walks the fill sites (interp_lookup miss, interp_insert,
         // result_lookup miss, result_insert), the measured second
         // execution serves the hit path. Cache faults leave the
         // measured result bit-identical either way: a fill fault only
         // forces the second execution back onto the full pipeline.
         cache::CacheConfig on;
         on.enable_interpretation = true;
         on.enable_results = true;
         db.ConfigureCaches(on);
         db.mutable_options()->force_plan = core::PlanForce::kAuto;
         arm(site);
         auto warm = db.Execute(dense_sql);
         EXPECT_TRUE(warm.ok()) << warm.status().ToString();
         auto run = db.Execute(dense_sql);
         db.ConfigureCaches(cache::CacheConfig());
         return run;
       }});
  return shapes;
}

TEST_F(FaultInjectionTest, SweepEverySiteAcrossEveryPlanShape) {
  const auto atom_preds = AtomPredicates(2);
  ASSERT_GE(atom_preds.size(), 2u)
      << "fixture produced no word2vec-interpretable predicates";
  auto shapes = MakeShapes(db(), atom_preds, NonsensePredicate());
  std::map<std::string, bool> covered;
  for (const char* site : fault::kSites) covered[site] = false;
  for (const auto& shape : shapes) {
    fault::DisarmAll();
    auto reference = shape.run("");
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    for (const char* site : fault::kSites) {
      SCOPED_TRACE(shape.name + " site=" + site);
      fault::DisarmAll();
      auto run = shape.run(site);
      const bool fired = fault::HitCount(site) > 0;
      fault::DisarmAll();
      // No fault ever surfaces as a crash or an error status: the
      // cascade degrades one stage and keeps serving.
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      ExpectSane(*run);
      if (fired) {
        covered[site] = true;
      } else {
        // Armed but never reached on this shape: zero perturbation.
        ExpectBitIdentical(*reference, *run);
        EXPECT_FALSE(run->degraded);
      }
    }
    // Recovery: once the storm passes, the shape is bit-identical again.
    fault::DisarmAll();
    auto after = shape.run("");
    ASSERT_TRUE(after.ok()) << after.status().ToString();
    ExpectBitIdentical(*reference, *after);
    EXPECT_FALSE(after->degraded);
  }
  for (const auto& [site, hit] : covered) {
    EXPECT_TRUE(hit) << "catalog entry never reached by any shape: " << site
                     << " (stale kSites entry or dead OPINEDB_FAULT site)";
  }
}

TEST_F(FaultInjectionTest, NthHitSemanticsAndUnreachedArming) {
  const auto atom_preds = AtomPredicates(1);
  ASSERT_FALSE(atom_preds.empty());
  const std::string sql =
      "select * from hotels where \"" + atom_preds[0] + "\" limit 5";
  auto reference = db().Execute(sql);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  // Fire on the 3rd hit: the first two entities score cleanly, the
  // third degrades, all later ones score cleanly again (one-shot).
  fault::Arm("score.features", 3);
  auto run = db().Execute(sql);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GE(fault::HitCount("score.features"), 3u);
  EXPECT_TRUE(run->degraded);
  ExpectSane(*run);
  fault::DisarmAll();
  // An N-th hit that is never reached must not perturb anything.
  fault::Arm("score.features", 1000000000);
  auto unfired = db().Execute(sql);
  ASSERT_TRUE(unfired.ok()) << unfired.status().ToString();
  EXPECT_FALSE(unfired->degraded);
  ExpectBitIdentical(*reference, *unfired);
}

TEST_F(FaultInjectionTest, DegradedFlagReportsEveryFallback) {
  const auto atom_preds = AtomPredicates(1);
  ASSERT_FALSE(atom_preds.empty());
  const std::string sql =
      "select * from hotels where \"" + atom_preds[0] + "\" limit 5";
  for (const char* site :
       {"interpret.embed", "interpret.w2v", "score.features"}) {
    SCOPED_TRACE(site);
    fault::Arm(site, 1);
    auto run = db().Execute(sql);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_GT(fault::HitCount(site), 0u);
    EXPECT_TRUE(run->degraded) << "fallback at " << site
                               << " not reported via QueryResult::degraded";
    fault::DisarmAll();
  }
}

// The degree cache must never retain a list computed under a degraded
// interpretation: arm the word2vec stage so its failure lands inside
// the cache's own Interpret call (hit 1 is the query prologue, hit 2
// the cache compute). The compute aborts, nothing is cached, and the
// query falls back to local scoring with the clean prologue
// interpretation — bit-identical to the unfaulted run.
TEST_F(FaultInjectionTest, FaultsNeverPoisonTheDegreeCache) {
  const auto atom_preds = AtomPredicates(1);
  ASSERT_FALSE(atom_preds.empty());
  const std::string sql =
      "select * from hotels where \"" + atom_preds[0] + "\" limit 5";
  auto reference = db().Execute(sql);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  core::DegreeCache cache(&db());
  db().AttachDegreeCache(&cache);
  fault::Arm("interpret.w2v", 2);
  auto run = db().Execute(sql);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->degraded);
  ExpectBitIdentical(*reference, *run);
  // The poisoned compute was discarded, not cached.
  EXPECT_FALSE(cache.Contains(atom_preds[0]));
  fault::DisarmAll();
  // The next (unfaulted) query repairs the cache with a clean list.
  auto repaired = db().Execute(sql);
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  EXPECT_FALSE(repaired->degraded);
  ExpectBitIdentical(*reference, *repaired);
  EXPECT_TRUE(cache.Contains(atom_preds[0]));
  db().AttachDegreeCache(nullptr);
}

// A fault at the result-cache fill site must leave the cache exactly as
// it was (the site sits before any mutation): the faulted query is
// still correct, nothing stale becomes resident, and the next unfaulted
// query repairs the cache with a clean entry that then serves
// bit-identical hits.
TEST_F(FaultInjectionTest, FaultsNeverPoisonTheResultCache) {
  const auto atom_preds = AtomPredicates(1);
  ASSERT_FALSE(atom_preds.empty());
  const std::string sql =
      "select * from hotels where \"" + atom_preds[0] + "\" limit 5";
  auto reference = db().Execute(sql);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  cache::CacheConfig on;
  on.enable_results = true;
  db().ConfigureCaches(on);
  fault::Arm("cache.result_insert", 1);
  auto run = db().Execute(sql);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(fault::HitCount("cache.result_insert"), 0u);
  ExpectBitIdentical(*reference, *run);
  EXPECT_EQ(db().result_cache()->size(), 0u);
  EXPECT_EQ(db().result_cache()->bytes(), 0u);
  fault::DisarmAll();
  auto repaired = db().Execute(sql);
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  EXPECT_FALSE(repaired->degraded);
  ExpectBitIdentical(*reference, *repaired);
  EXPECT_EQ(db().result_cache()->size(), 1u);
  auto hit = db().Execute(sql);
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  EXPECT_TRUE(hit->stats.result_cache_hit);
  ExpectBitIdentical(*reference, *hit);
  db().ConfigureCaches(cache::CacheConfig());
}

// Same contract for the interpretation-cache fill, plus the lookup-side
// fault: a failed consult serves the answer by full execution (reported
// as degraded — off the preferred path) and never caches it.
TEST_F(FaultInjectionTest, FaultsNeverPoisonTheInterpretationCache) {
  const auto atom_preds = AtomPredicates(1);
  ASSERT_FALSE(atom_preds.empty());
  const std::string sql =
      "select * from hotels where \"" + atom_preds[0] + "\" limit 5";
  auto reference = db().Execute(sql);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  cache::CacheConfig on;
  on.enable_interpretation = true;
  db().ConfigureCaches(on);
  fault::Arm("cache.interp_insert", 1);
  auto run = db().Execute(sql);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(fault::HitCount("cache.interp_insert"), 0u);
  EXPECT_FALSE(run->degraded);  // The fill failure is invisible.
  ExpectBitIdentical(*reference, *run);
  EXPECT_EQ(db().interpretation_cache()->size(), 0u);
  fault::DisarmAll();
  auto repaired = db().Execute(sql);
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  ExpectBitIdentical(*reference, *repaired);
  EXPECT_EQ(db().interpretation_cache()->size(), 1u);
  db().ConfigureCaches(cache::CacheConfig());
}

// Result-cache lookup fault: the engine answers by full execution —
// complete, bit-identical, flagged degraded — and keeps the query out
// of the cache for this serving.
TEST_F(FaultInjectionTest, ResultCacheLookupFaultFallsBackToExecution) {
  const auto atom_preds = AtomPredicates(1);
  ASSERT_FALSE(atom_preds.empty());
  const std::string sql =
      "select * from hotels where \"" + atom_preds[0] + "\" limit 5";
  auto reference = db().Execute(sql);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  cache::CacheConfig on;
  on.enable_results = true;
  db().ConfigureCaches(on);
  fault::Arm("cache.result_lookup", 1);
  auto run = db().Execute(sql);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(fault::HitCount("cache.result_lookup"), 0u);
  EXPECT_TRUE(run->degraded);
  EXPECT_FALSE(run->stats.result_cache_hit);
  ExpectBitIdentical(*reference, *run);
  EXPECT_EQ(db().result_cache()->size(), 0u);
  fault::DisarmAll();
  db().ConfigureCaches(cache::CacheConfig());
}

// ------------------------------------------------- Serving-layer sites.
// The kServerSites catalog (common/fault.h) is swept over a live
// loopback server. The blast-radius contract: a fired server site
// degrades exactly one connection or response — never the server, and
// never a *different* connection's request.

TEST_F(FaultInjectionTest, ServerAcceptFaultDropsOneConnectionOnly) {
  server::QueryServer query_server(&db());
  ASSERT_TRUE(query_server.Start().ok());
  fault::Arm("server.accept", 1);
  server::HttpClient dropped;
  ASSERT_TRUE(dropped.Connect("127.0.0.1", query_server.port()).ok());
  // The faulted accept closes the connection before any response.
  auto failed = dropped.Get("/healthz");
  EXPECT_FALSE(failed.ok());
  EXPECT_GT(fault::HitCount("server.accept"), 0u);
  // The very next connection is served normally.
  server::HttpClient next;
  ASSERT_TRUE(next.Connect("127.0.0.1", query_server.port()).ok());
  auto served = next.Get("/healthz");
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_EQ(served->status, 200);
  query_server.Stop();
}

TEST_F(FaultInjectionTest, ServerReadFaultAbandonsOneRequestOnly) {
  server::QueryServer query_server(&db());
  ASSERT_TRUE(query_server.Start().ok());
  fault::Arm("server.read", 1);
  server::HttpClient dropped;
  ASSERT_TRUE(dropped.Connect("127.0.0.1", query_server.port()).ok());
  auto failed = dropped.Get("/healthz");
  EXPECT_FALSE(failed.ok());
  EXPECT_GT(fault::HitCount("server.read"), 0u);
  server::HttpClient next;
  ASSERT_TRUE(next.Connect("127.0.0.1", query_server.port()).ok());
  auto served = next.Get("/healthz");
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_EQ(served->status, 200);
  query_server.Stop();
}

// The satellite contract named in the catalog: a fault during response
// write substitutes a well-formed 500 and must NOT poison the reused
// connection — the next request on the same keep-alive stream parses
// and serves normally, bit-identical to embedded execution.
TEST_F(FaultInjectionTest, ServerWriteFaultDoesNotPoisonReusedConnection) {
  const auto atom_preds = AtomPredicates(1);
  ASSERT_FALSE(atom_preds.empty());
  const std::string sql =
      "select * from hotels where \"" + atom_preds[0] + "\" limit 5";
  auto reference = db().Execute(sql);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  const std::string expected = core::ResultToJson(*reference);
  std::string body = "{\"sql\": ";
  JsonEscapeAppend(sql, &body);
  body += "}";

  server::QueryServer query_server(&db());
  ASSERT_TRUE(query_server.Start().ok());
  server::HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", query_server.port()).ok());
  fault::Arm("server.write", 1);
  auto faulted = client.Post("/query", body);
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
  EXPECT_EQ(faulted->status, 500);
  EXPECT_GT(fault::HitCount("server.write"), 0u);
  fault::DisarmAll();
  // Same connection, next request: served as if nothing happened.
  auto repaired = client.Post("/query", body);
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  EXPECT_EQ(repaired->status, 200);
  EXPECT_EQ(repaired->body, expected);
  query_server.Stop();
}

TEST_F(FaultInjectionTest, ServerShedFaultForcesThe429Path) {
  server::QueryServer query_server(&db());
  ASSERT_TRUE(query_server.Start().ok());
  fault::Arm("server.shed", 1);
  server::HttpClient shed;
  ASSERT_TRUE(shed.Connect("127.0.0.1", query_server.port()).ok());
  ASSERT_TRUE(shed.SendRaw("GET /healthz HTTP/1.1\r\n\r\n").ok());
  auto response = shed.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 429);
  EXPECT_EQ(response->Header("retry-after"), "1");
  EXPECT_GT(fault::HitCount("server.shed"), 0u);
  EXPECT_EQ(query_server.httpd().shed_count(), 1u);
  // Admission recovers immediately once the site disarms (one-shot).
  server::HttpClient next;
  ASSERT_TRUE(next.Connect("127.0.0.1", query_server.port()).ok());
  auto served = next.Get("/healthz");
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_EQ(served->status, 200);
  query_server.Stop();
}

// Catalog liveness for kServerSites, mirroring the kSites sweep: every
// entry must be reachable through the loopback server — a stale entry
// or dead OPINEDB_FAULT site fails loudly.
TEST_F(FaultInjectionTest, EveryServerSiteIsReachable) {
  server::QueryServer query_server(&db());
  ASSERT_TRUE(query_server.Start().ok());
  for (const char* site : fault::kServerSites) {
    SCOPED_TRACE(site);
    fault::DisarmAll();
    fault::Arm(site, 1);
    server::HttpClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", query_server.port()).ok());
    // Whatever the site does to this request — drop, 500, 429 — it
    // must fire, and the server must keep serving afterwards.
    (void)client.Get("/healthz");
    EXPECT_GT(fault::HitCount(site), 0u)
        << "catalog entry never reached: " << site
        << " (stale kServerSites entry or dead OPINEDB_FAULT site)";
    fault::DisarmAll();
    server::HttpClient after;
    ASSERT_TRUE(after.Connect("127.0.0.1", query_server.port()).ok());
    auto served = after.Get("/healthz");
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    EXPECT_EQ(served->status, 200);
  }
  query_server.Stop();
}

}  // namespace
}  // namespace opinedb
