// Unit tests for the logical planner: condition classification, hard
// objective-predicate extraction, conjunctive-shape detection, physical
// plan selection rules and the EXPLAIN renderer. These run on parsed
// queries alone — no engine build — so they pin the planner's behavior
// cheaply. End-to-end plan equivalence lives in
// plan_equivalence_test.cc.
#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "core/planner.h"
#include "core/query.h"

namespace opinedb::core {
namespace {

SubjectiveQuery Parse(const std::string& sql) {
  auto query = ParseSubjectiveSql(sql);
  EXPECT_TRUE(query.ok()) << sql << ": " << query.status().ToString();
  return query.ok() ? *query : SubjectiveQuery{};
}

PlannerContext Context(size_t num_entities = 100,
                       PlanForce force = PlanForce::kAuto) {
  PlannerContext context;
  context.num_entities = num_entities;
  context.cache = nullptr;
  context.force = force;
  return context;
}

// ------------------------------------------------------ AnalyzeQuery.

TEST(AnalyzeQueryTest, ClassifiesConditions) {
  const auto query = Parse(
      "select * from hotels where price_pn < 100 and \"clean room\" "
      "and city = 'london' limit 5");
  const auto logical = AnalyzeQuery(query);
  EXPECT_EQ(logical.objective_leaves, (std::vector<size_t>{0, 2}));
  EXPECT_EQ(logical.subjective_leaves, (std::vector<size_t>{1}));
}

TEST(AnalyzeQueryTest, HardObjectiveThroughNestedAnds) {
  // Both objective leaves sit on AND-only paths from the root, even
  // though one is inside a parenthesized group.
  const auto query = Parse(
      "select * from hotels where price_pn < 100 and "
      "(\"clean room\" and city = 'london')");
  const auto logical = AnalyzeQuery(query);
  EXPECT_EQ(logical.hard_objective, (std::vector<size_t>{0, 2}));
  // The nested AND is not a plain leaf, so the TA shape is off.
  EXPECT_FALSE(logical.conjunctive_leaves_only);
}

TEST(AnalyzeQueryTest, OrBlocksHardExtraction) {
  const auto query = Parse(
      "select * from hotels where (\"clean room\" or city = 'london') "
      "and price_pn < 100");
  const auto logical = AnalyzeQuery(query);
  // Only the price predicate is AND-reachable; the city predicate under
  // OR cannot force the WHERE to zero.
  EXPECT_EQ(logical.hard_objective, (std::vector<size_t>{2}));
}

TEST(AnalyzeQueryTest, NotBlocksHardExtraction) {
  const auto query =
      Parse("select * from hotels where not price_pn < 100");
  const auto logical = AnalyzeQuery(query);
  EXPECT_TRUE(logical.hard_objective.empty());
}

TEST(AnalyzeQueryTest, ConjunctiveLeavesOnlyShapes) {
  const auto conj = AnalyzeQuery(Parse(
      "select * from hotels where \"a\" and \"b\" and \"c\" limit 5"));
  EXPECT_TRUE(conj.conjunctive_leaves_only);
  EXPECT_EQ(conj.conjuncts, (std::vector<size_t>{0, 1, 2}));

  const auto single =
      AnalyzeQuery(Parse("select * from hotels where \"a\""));
  EXPECT_TRUE(single.conjunctive_leaves_only);
  EXPECT_EQ(single.conjuncts, (std::vector<size_t>{0}));

  const auto nested = AnalyzeQuery(
      Parse("select * from hotels where \"a\" and (\"b\" or \"c\")"));
  EXPECT_FALSE(nested.conjunctive_leaves_only);
  EXPECT_TRUE(nested.conjuncts.empty());

  const auto no_where = AnalyzeQuery(Parse("select * from hotels limit 5"));
  EXPECT_FALSE(no_where.conjunctive_leaves_only);
  EXPECT_TRUE(no_where.hard_objective.empty());
}

// -------------------------------------------------------- SelectPlan.

TEST(SelectPlanTest, DenseWhenNothingToPushDown) {
  const auto query =
      Parse("select * from hotels where \"a\" or \"b\" limit 5");
  const auto logical = AnalyzeQuery(query);
  const auto physical = SelectPlan(query, logical, Context());
  EXPECT_EQ(physical.kind, PlanKind::kDenseScan);
  EXPECT_FALSE(physical.filtered_eligible);
  EXPECT_FALSE(physical.ta_eligible);
}

TEST(SelectPlanTest, FilteredWhenHardObjectivePresent) {
  const auto query = Parse(
      "select * from hotels where price_pn < 100 and \"a\" limit 5");
  const auto logical = AnalyzeQuery(query);
  const auto physical = SelectPlan(query, logical, Context());
  EXPECT_EQ(physical.kind, PlanKind::kFilteredScan);
  EXPECT_TRUE(physical.filtered_eligible);
}

TEST(SelectPlanTest, TaRequiresACache) {
  // Conjunctive all-subjective shape, but no cache attached: TA is
  // ineligible and the choice stays dense.
  const auto query =
      Parse("select * from hotels where \"a\" and \"b\" limit 5");
  const auto logical = AnalyzeQuery(query);
  const auto physical = SelectPlan(query, logical, Context());
  EXPECT_FALSE(physical.ta_eligible);
  EXPECT_EQ(physical.kind, PlanKind::kDenseScan);
}

TEST(SelectPlanTest, ForceDenseAlwaysWins) {
  const auto query = Parse(
      "select * from hotels where price_pn < 100 and \"a\" limit 5");
  const auto logical = AnalyzeQuery(query);
  const auto physical =
      SelectPlan(query, logical, Context(100, PlanForce::kDenseScan));
  EXPECT_EQ(physical.kind, PlanKind::kDenseScan);
  EXPECT_FALSE(physical.forced_fallback);
}

TEST(SelectPlanTest, IneligibleForcedPlanFallsBack) {
  const auto query = Parse(
      "select * from hotels where price_pn < 100 and \"a\" limit 5");
  const auto logical = AnalyzeQuery(query);
  // TA forced but ineligible (objective leaf, no cache): fall back to
  // the automatic choice, which is the filtered scan.
  const auto physical =
      SelectPlan(query, logical, Context(100, PlanForce::kTaTopK));
  EXPECT_EQ(physical.kind, PlanKind::kFilteredScan);
  EXPECT_TRUE(physical.forced_fallback);

  // Filtered forced on a query without hard predicates: dense.
  const auto soft = Parse("select * from hotels where \"a\" or \"b\"");
  const auto soft_logical = AnalyzeQuery(soft);
  const auto soft_physical =
      SelectPlan(soft, soft_logical, Context(100, PlanForce::kFilteredScan));
  EXPECT_EQ(soft_physical.kind, PlanKind::kDenseScan);
  EXPECT_TRUE(soft_physical.forced_fallback);
}

// ----------------------------------------------------------- EXPLAIN.

TEST(ExplainPlanTest, RendersFilteredScan) {
  const auto query = Parse(
      "select * from hotels where city = 'london' and price_pn < 300 "
      "and \"friendly staff\" limit 40");
  const auto logical = AnalyzeQuery(query);
  const auto context = Context();
  const auto physical = SelectPlan(query, logical, context);
  const std::string text = ExplainPlan(query, logical, physical, context);
  EXPECT_NE(text.find("plan: filtered_scan"), std::string::npos) << text;
  EXPECT_NE(text.find("table: hotels  limit: 40"), std::string::npos);
  EXPECT_NE(text.find("city = 'london' [hard]"), std::string::npos);
  EXPECT_NE(text.find("price_pn < 300 [hard]"), std::string::npos);
  EXPECT_NE(text.find("subjective \"friendly staff\""), std::string::npos);
  EXPECT_NE(text.find("ObjectiveFilter(2 hard predicates)"),
            std::string::npos);
  EXPECT_NE(text.find("Rank(top 40, partial_sort)"), std::string::npos);
}

TEST(ExplainPlanTest, RendersDenseScanAndEmptyWhere) {
  const auto query = Parse("select * from hotels limit 5");
  const auto logical = AnalyzeQuery(query);
  const auto context = Context();
  const auto physical = SelectPlan(query, logical, context);
  const std::string text = ExplainPlan(query, logical, physical, context);
  EXPECT_NE(text.find("plan: dense_scan"), std::string::npos);
  EXPECT_NE(text.find("where: (none)"), std::string::npos);
  EXPECT_NE(text.find("conditions: (none)"), std::string::npos);
}

TEST(ExplainPlanTest, ParserSetsExplainFlag) {
  const auto query =
      Parse("explain select * from hotels where \"a\" limit 5");
  EXPECT_TRUE(query.explain);
  EXPECT_EQ(query.table, "hotels");
  const auto plain = Parse("select * from hotels where \"a\" limit 5");
  EXPECT_FALSE(plain.explain);
}

TEST(PlanKindNameTest, StableNames) {
  EXPECT_STREQ(PlanKindName(PlanKind::kDenseScan), "dense_scan");
  EXPECT_STREQ(PlanKindName(PlanKind::kFilteredScan), "filtered_scan");
  EXPECT_STREQ(PlanKindName(PlanKind::kTaTopK), "ta_topk");
}

}  // namespace
}  // namespace opinedb::core
