#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/domain_spec.h"
#include "datagen/generator.h"
#include "extract/opinion_tagger.h"
#include "extract/pairing.h"
#include "extract/pipeline.h"
#include "extract/tags.h"

namespace opinedb::extract {
namespace {

TEST(SpansFromTagsTest, ExtractsMaximalRuns) {
  // "Bed was too soft , bathroom a wee bit small"
  std::vector<int> tags = {kAS, kO, kOP, kOP, kO, kAS, kOP, kOP, kOP, kOP};
  auto spans = SpansFromTags(tags);
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0], (Span{0, 1, kAS}));
  EXPECT_EQ(spans[1], (Span{2, 4, kOP}));
  EXPECT_EQ(spans[2], (Span{5, 6, kAS}));
  EXPECT_EQ(spans[3], (Span{6, 10, kOP}));
}

TEST(SpansFromTagsTest, AllOIsEmpty) {
  EXPECT_TRUE(SpansFromTags({kO, kO, kO}).empty());
  EXPECT_TRUE(SpansFromTags({}).empty());
}

TEST(SpansFromTagsTest, AdjacentDifferentTagsSplit) {
  auto spans = SpansFromTags({kAS, kOP});
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].tag, kAS);
  EXPECT_EQ(spans[1].tag, kOP);
}

TEST(SpanTextTest, JoinsTokens) {
  std::vector<std::string> tokens = {"very", "clean", "room"};
  EXPECT_EQ(SpanText(tokens, Span{0, 2, kOP}), "very clean");
  EXPECT_EQ(SpanText(tokens, Span{1, 1, kAS}), "");
}

TEST(TaggingFeaturesTest, ProducesContextAndLexiconFeatures) {
  auto lexicon = sentiment::Lexicon::Default();
  auto features = TaggingFeatures({"the", "room", "was", "clean"}, lexicon);
  ASSERT_EQ(features.size(), 4u);
  // The "clean" token must carry a positive-lexicon feature.
  bool has_lex_pos = false;
  for (const auto& f : features[3]) {
    if (f == "lex=pos") has_lex_pos = true;
  }
  EXPECT_TRUE(has_lex_pos);
  // And its left-context feature names "was".
  bool has_prev = false;
  for (const auto& f : features[3]) {
    if (f == "p1:w=was") has_prev = true;
  }
  EXPECT_TRUE(has_prev);
}

class TaggerTest : public ::testing::Test {
 protected:
  static std::vector<LabeledSentence> TrainingData() {
    return datagen::GenerateLabeledSentences(datagen::HotelDomain(), 400, 1);
  }
};

TEST_F(TaggerTest, LearnedTaggerBeatsChance) {
  auto train = TrainingData();
  auto test = datagen::GenerateLabeledSentences(datagen::HotelDomain(), 100,
                                                99);
  auto tagger = OpinionTagger::Train(train);
  int correct = 0;
  int total = 0;
  for (const auto& sentence : test) {
    auto predicted = tagger.Tag(sentence.tokens);
    for (size_t i = 0; i < sentence.tags.size(); ++i) {
      if (predicted[i] == sentence.tags[i]) ++correct;
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.85);
}

TEST_F(TaggerTest, RuleTaggerTagsLexiconWords) {
  RuleBasedTagger tagger({"room", "staff"});
  auto tags = tagger.Tag({"the", "room", "was", "very", "clean"});
  EXPECT_EQ(tags[0], kO);
  EXPECT_EQ(tags[1], kAS);
  EXPECT_EQ(tags[3], kOP);  // "very" attaches to "clean".
  EXPECT_EQ(tags[4], kOP);
}

TEST_F(TaggerTest, RuleTaggerUnknownWordsAreO) {
  RuleBasedTagger tagger({});
  auto tags = tagger.Tag({"we", "arrived", "late"});
  for (int tag : tags) EXPECT_EQ(tag, kO);
}

TEST(RuleBasedPairingTest, NearestAspectWins) {
  // tokens: [asp A][...][op X][asp B][op Y]
  std::vector<Span> spans = {
      {0, 1, kAS}, {4, 5, kOP}, {5, 6, kAS}, {8, 9, kOP}};
  auto pairs = RuleBasedPairing(spans);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0].aspect, (Span{5, 6, kAS}));  // X pairs with nearer B.
  EXPECT_EQ(pairs[1].aspect, (Span{5, 6, kAS}));  // Y pairs with B too.
}

TEST(RuleBasedPairingTest, OpinionWithoutAspectGetsEmptyAspect) {
  std::vector<Span> spans = {{2, 3, kOP}};
  auto pairs = RuleBasedPairing(spans);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].aspect.begin, pairs[0].aspect.end);
}

TEST(RuleBasedPairingTest, NoOpinionsNoPairs) {
  std::vector<Span> spans = {{0, 1, kAS}};
  EXPECT_TRUE(RuleBasedPairing(spans).empty());
}

TEST(PairingClassifierTest, LearnsDistancePreference) {
  // Build training examples where correct links are short-distance.
  Rng rng(5);
  std::vector<PairingClassifier::Example> examples;
  for (int i = 0; i < 400; ++i) {
    const int a_pos = static_cast<int>(rng.Below(5));
    const int gap = 1 + static_cast<int>(rng.Below(12));
    Span aspect{a_pos, a_pos + 1, kAS};
    Span opinion{a_pos + gap, a_pos + gap + 1, kOP};
    PairingClassifier::Example ex;
    ex.spans = {aspect, opinion};
    ex.aspect = aspect;
    ex.opinion = opinion;
    ex.correct = gap <= 4;
    examples.push_back(std::move(ex));
  }
  auto classifier = PairingClassifier::Train(examples);
  EXPECT_GT(classifier.Accuracy(examples), 0.9);
  // Close pair scores above far pair.
  Span a{0, 1, kAS};
  Span near{2, 3, kOP};
  Span far{14, 15, kOP};
  EXPECT_GT(classifier.Score({a, near}, a, near),
            classifier.Score({a, far}, a, far));
}

TEST(PipelineTest, ExtractsAspectOpinionPairsWithProvenance) {
  auto train = datagen::GenerateLabeledSentences(datagen::HotelDomain(), 500,
                                                 2);
  auto tagger = OpinionTagger::Train(train);
  ExtractionPipeline pipeline(std::move(tagger));

  text::ReviewCorpus corpus;
  auto hotel = corpus.AddEntity("h");
  auto review_id = corpus.AddReview(
      hotel, 1, 0, "the room was very clean. the staff was rude.");
  auto opinions = pipeline.ExtractFromReview(corpus.review(review_id));
  ASSERT_GE(opinions.size(), 2u);
  bool found_clean = false;
  bool found_rude = false;
  for (const auto& opinion : opinions) {
    EXPECT_EQ(opinion.entity, hotel);
    EXPECT_EQ(opinion.review, review_id);
    if (opinion.aspect == "room" && opinion.opinion == "very clean") {
      found_clean = true;
      EXPECT_GT(opinion.sentiment, 0.0);
    }
    if (opinion.aspect == "staff" && opinion.opinion == "rude") {
      found_rude = true;
      EXPECT_LT(opinion.sentiment, 0.0);
    }
  }
  EXPECT_TRUE(found_clean);
  EXPECT_TRUE(found_rude);
}

TEST(PipelineTest, CorpusExtractionCoversAllReviews) {
  auto train = datagen::GenerateLabeledSentences(datagen::HotelDomain(), 300,
                                                 3);
  auto tagger = OpinionTagger::Train(train);
  ExtractionPipeline pipeline(std::move(tagger));
  text::ReviewCorpus corpus;
  auto h0 = corpus.AddEntity("h0");
  auto h1 = corpus.AddEntity("h1");
  corpus.AddReview(h0, 1, 0, "spotless room.");
  corpus.AddReview(h1, 2, 0, "filthy carpet and rude staff.");
  auto all = pipeline.ExtractFromCorpus(corpus);
  bool saw_h0 = false;
  bool saw_h1 = false;
  for (const auto& opinion : all) {
    if (opinion.entity == h0) saw_h0 = true;
    if (opinion.entity == h1) saw_h1 = true;
  }
  EXPECT_TRUE(saw_h0);
  EXPECT_TRUE(saw_h1);
}

}  // namespace
}  // namespace opinedb::extract
