// Crash-consistency harness for the snapshot store and the engine's
// SaveDatabase / OpenDatabase wiring. Three layers:
//
//  1. a deterministic sweep of every fault::kStorageSites entry — each
//     injected crash / media fault must leave the store serving either
//     the previous generation bit-identically or the new one, with the
//     commit reporting the truth, and a later clean commit self-heals.
//     This sweep is also the storage catalog's liveness check (the
//     persistence counterpart of fault_injection_test's kSites sweep);
//  2. a randomized corruption fuzzer: >= 10k seeded mutations of a real
//     snapshot file, each of which must recover the intact older
//     generation bit-identically (or, when nothing valid remains, a
//     typed DataLoss) — never a crash, hang, or wrong data;
//  3. engine-level golden tests over a small built domain: save /
//     corrupt / reopen must serve the older generation with queries
//     bit-identical to its goldens, and save -> open -> save must
//     reproduce byte-identical snapshot payloads.
//
// The fault-site sweep self-skips in builds where OPINEDB_FAULT_INJECTION
// is off; the fuzzer and engine tests run everywhere.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache/cache_config.h"
#include "cache/interpretation_cache.h"
#include "common/fault.h"
#include "common/rng.h"
#include "core/engine.h"
#include "core/serialize.h"
#include "datagen/domain_spec.h"
#include "eval/experiment.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/snapshot_store.h"

namespace opinedb {
namespace {

namespace fs = std::filesystem;
using storage::LoadedSnapshot;
using storage::SnapshotSection;
using storage::SnapshotStore;

std::string ReadFileBytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

void FlipByteInFile(const fs::path& path, size_t offset, unsigned char mask) {
  std::string bytes = ReadFileBytes(path);
  ASSERT_LT(offset, bytes.size());
  bytes[offset] = static_cast<char>(
      static_cast<unsigned char>(bytes[offset]) ^ mask);
  WriteFileBytes(path, bytes);
}

void ExpectSectionsEqual(const std::vector<SnapshotSection>& want,
                         const std::vector<SnapshotSection>& got) {
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].name, got[i].name);
    EXPECT_EQ(want[i].payload, got[i].payload);  // Bit-identical.
  }
}

// ===================================================== Fault sweep.

class CrashSweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault::CompiledIn()) {
      GTEST_SKIP() << "fault injection compiled out (plain Release build)";
    }
    fault::DisarmAll();
    dir_ = fs::path(::testing::TempDir()) /
           ("crash_sweep_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    std::error_code ec;
    fs::remove_all(dir_, ec);

    old_sections_.resize(2);
    old_sections_[0] = {"schema", "old schema bytes"};
    old_sections_[1] = {"summaries", std::string(512, 'a')};
    new_sections_.resize(2);
    new_sections_[0] = {"schema", "new schema bytes"};
    new_sections_[1] = {"summaries", std::string(512, 'b')};
  }

  void TearDown() override {
    fault::DisarmAll();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  /// Commits the baseline generation 1 with no fault armed.
  void CommitBaseline(SnapshotStore* store) {
    auto committed = store->Commit(old_sections_);
    ASSERT_TRUE(committed.ok()) << committed.status().ToString();
    ASSERT_EQ(*committed, 1u);
  }

  /// After any fault outcome, a clean commit must succeed and become
  /// the served generation — the store self-heals.
  void ExpectSelfHeals(SnapshotStore* store) {
    fault::DisarmAll();
    auto committed = store->Commit(new_sections_);
    ASSERT_TRUE(committed.ok()) << committed.status().ToString();
    auto recovered = store->Recover();
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_EQ(recovered->generation, *committed);
    EXPECT_EQ(recovered->manifest_generation, *committed);
    EXPECT_EQ(recovered->skipped_generations, 0u);
    ExpectSectionsEqual(new_sections_, recovered->sections);
  }

  std::string dir() const { return dir_.string(); }

  fs::path dir_;
  std::vector<SnapshotSection> old_sections_;
  std::vector<SnapshotSection> new_sections_;
};

// A crash before the new data is visible (torn write, failed fsync,
// crash before the data rename) must fail the commit and leave recovery
// serving generation 1 bit-identically.
TEST_F(CrashSweepTest, CrashBeforeDataVisibleServesOldGeneration) {
  for (const char* site :
       {"storage.short_write", "storage.fsync", "storage.rename_data"}) {
    SCOPED_TRACE(site);
    std::error_code ec;
    fs::remove_all(dir_, ec);
    SnapshotStore store(dir());
    CommitBaseline(&store);

    fault::Arm(site, 1);
    auto committed = store.Commit(new_sections_);
    ASSERT_FALSE(committed.ok()) << site;
    EXPECT_EQ(committed.status().code(), StatusCode::kInternal);
    EXPECT_NE(committed.status().message().find(site), std::string::npos)
        << committed.status().ToString();
    EXPECT_GT(fault::HitCount(site), 0u) << "site never reached: " << site;

    auto recovered = store.Recover();
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_EQ(recovered->generation, 1u);
    EXPECT_EQ(recovered->manifest_generation, 1u);
    ExpectSectionsEqual(old_sections_, recovered->sections);

    ExpectSelfHeals(&store);
  }
}

// A crash between the data rename and the manifest rename: the commit
// reports failure, but the new generation is durable and self-validating,
// so recovery serves it — with the manifest hint lagging one behind,
// which is exactly what operators can alert on.
TEST_F(CrashSweepTest, CrashBetweenDataAndManifestServesNewGeneration) {
  SnapshotStore store(dir());
  CommitBaseline(&store);

  fault::Arm("storage.rename_manifest", 1);
  auto committed = store.Commit(new_sections_);
  ASSERT_FALSE(committed.ok());
  EXPECT_GT(fault::HitCount("storage.rename_manifest"), 0u);

  auto recovered = store.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->generation, 2u);
  EXPECT_EQ(recovered->manifest_generation, 1u);  // Lagging hint.
  EXPECT_EQ(recovered->skipped_generations, 0u);
  ExpectSectionsEqual(new_sections_, recovered->sections);

  ExpectSelfHeals(&store);
}

// A post-write media bit flip: the commit itself succeeds (the fault is
// silent, like real bit rot) but recovery's checksums catch it and fall
// back to generation 1.
TEST_F(CrashSweepTest, BitRotFallsBackToOldGeneration) {
  SnapshotStore store(dir());
  CommitBaseline(&store);

  fault::Arm("storage.bitflip", 1);
  auto committed = store.Commit(new_sections_);
  ASSERT_TRUE(committed.ok()) << committed.status().ToString();
  EXPECT_EQ(*committed, 2u);
  EXPECT_GT(fault::HitCount("storage.bitflip"), 0u);

  auto recovered = store.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->generation, 1u);
  EXPECT_EQ(recovered->skipped_generations, 1u);
  EXPECT_EQ(recovered->manifest_generation, 2u);
  ExpectSectionsEqual(old_sections_, recovered->sections);

  ExpectSelfHeals(&store);
}

// A torn first-ever commit: no older generation exists, so recovery
// must report the typed emptiness/loss error, never invent data.
TEST_F(CrashSweepTest, TornFirstCommitLeavesTypedError) {
  SnapshotStore store(dir());
  fault::Arm("storage.short_write", 1);
  ASSERT_FALSE(store.Commit(new_sections_).ok());
  auto recovered = store.Recover();
  ASSERT_FALSE(recovered.ok());
  // Only an unrenamed tmp file exists — that is "no snapshot", not loss.
  EXPECT_EQ(recovered.status().code(), StatusCode::kNotFound);

  // A bit-rotted first commit, by contrast, leaves a visible-but-bad
  // generation: that is DataLoss.
  fault::DisarmAll();
  fault::Arm("storage.bitflip", 1);
  ASSERT_TRUE(store.Commit(new_sections_).ok());
  recovered = store.Recover();
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kDataLoss);

  ExpectSelfHeals(&store);
}

// Catalog liveness: every entry of fault::kStorageSites must be reached
// by a plain two-commit workload. A stale catalog entry fails here, the
// same contract fault_injection_test enforces for the serving-path
// catalog.
TEST_F(CrashSweepTest, EveryStorageSiteIsLive) {
  for (const char* site : fault::kStorageSites) {
    SCOPED_TRACE(site);
    fault::DisarmAll();
    std::error_code ec;
    fs::remove_all(dir_, ec);
    SnapshotStore store(dir());
    CommitBaseline(&store);
    fault::Arm(site, 1);
    (void)store.Commit(new_sections_);
    EXPECT_GT(fault::HitCount(site), 0u) << "dead catalog entry: " << site;
  }
}

// A fault armed for a hit that never comes (nth = 1000) perturbs
// nothing: the commit and recovery are byte-for-byte normal.
TEST_F(CrashSweepTest, UnfiredFaultPerturbsNothing) {
  SnapshotStore store(dir());
  CommitBaseline(&store);
  for (const char* site : fault::kStorageSites) {
    fault::Arm(site, 1000);
  }
  auto committed = store.Commit(new_sections_);
  ASSERT_TRUE(committed.ok()) << committed.status().ToString();
  auto recovered = store.Recover();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->generation, 2u);
  EXPECT_EQ(recovered->skipped_generations, 0u);
  ExpectSectionsEqual(new_sections_, recovered->sections);
}

// ================================================ Corruption fuzzer.

class CorruptionFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) / "snapshot_corruption_fuzz";
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  fs::path dir_;
};

// >= 10k randomized corruptions of a real snapshot file. Contract: with
// an intact generation 1 on disk, Recover() after any mangling of
// generation 2 either serves generation 2 only when its bytes are
// untouched, or falls back to generation 1 bit-identically. It never
// crashes, never throws, never serves anything else.
TEST_F(CorruptionFuzzTest, TenThousandRandomCorruptionsRecoverCleanly) {
  Rng rng(20260806);
  // Realistically sized payloads (a few KiB of irregular bytes).
  std::vector<SnapshotSection> gen1(2), gen2(2);
  gen1[0].name = "schema";
  gen2[0].name = "schema";
  gen1[1].name = "summaries";
  gen2[1].name = "summaries";
  for (int i = 0; i < 3000; ++i) {
    gen1[0].payload.push_back(static_cast<char>(rng.Below(256)));
    gen2[0].payload.push_back(static_cast<char>(rng.Below(256)));
    gen1[1].payload.push_back(static_cast<char>(rng.Below(256)));
    gen2[1].payload.push_back(static_cast<char>(rng.Below(256)));
  }
  SnapshotStore store(dir_.string());
  ASSERT_TRUE(store.Commit(gen1).ok());
  ASSERT_TRUE(store.Commit(gen2).ok());
  const fs::path gen2_path = dir_ / SnapshotStore::GenerationFileName(2);
  const std::string golden2 = ReadFileBytes(gen2_path);

  constexpr int kTrials = 10000;
  int fallbacks = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::string mutated = golden2;
    const int mutations = static_cast<int>(rng.Below(4)) + 1;
    for (int m = 0; m < mutations && !mutated.empty(); ++m) {
      switch (rng.Below(4)) {
        case 0: {  // Single-bit flip.
          const size_t at = rng.Below(mutated.size());
          mutated[at] = static_cast<char>(
              static_cast<unsigned char>(mutated[at]) ^
              (1u << rng.Below(8)));
          break;
        }
        case 1: {  // Byte overwrite.
          mutated[rng.Below(mutated.size())] =
              static_cast<char>(rng.Below(256));
          break;
        }
        case 2: {  // Truncation.
          mutated.resize(rng.Below(mutated.size() + 1));
          break;
        }
        default: {  // Garbage extension.
          const size_t extra = rng.Below(64) + 1;
          for (size_t i = 0; i < extra; ++i) {
            mutated.push_back(static_cast<char>(rng.Below(256)));
          }
          break;
        }
      }
    }
    WriteFileBytes(gen2_path, mutated);
    ASSERT_NO_THROW({
      auto recovered = store.Recover();
      ASSERT_TRUE(recovered.ok())
          << "trial " << trial << ": " << recovered.status().ToString();
      if (recovered->generation == 2) {
        // Only an identity mutation may still serve generation 2.
        EXPECT_EQ(mutated, golden2) << "trial " << trial;
        ExpectSectionsEqual(gen2, recovered->sections);
      } else {
        ASSERT_EQ(recovered->generation, 1u) << "trial " << trial;
        EXPECT_EQ(recovered->skipped_generations, 1u);
        ExpectSectionsEqual(gen1, recovered->sections);
        ++fallbacks;
      }
    }) << "trial " << trial;
  }
  // Sanity: the fuzzer actually corrupted things (identity mutations —
  // e.g. a truncation landing on full size — are rare).
  EXPECT_GT(fallbacks, kTrials / 2);
  WriteFileBytes(gen2_path, golden2);  // Restore for any later reader.
}

// ================================================ Engine-level tests.

class EnginePersistenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eval::BuildOptions options;
    options.generator.num_entities = 18;
    options.generator.min_reviews_per_entity = 6;
    options.generator.max_reviews_per_entity = 10;
    options.generator.seed = 77;
    options.seed = 77;
    options.extractor_training_sentences = 300;
    options.predicate_pool_size = 20;
    options.membership_training_tuples = 300;
    artifacts_ = new eval::DomainArtifacts(
        eval::BuildArtifacts(datagen::HotelDomain(), options));
  }

  static void TearDownTestSuite() {
    delete artifacts_;
    artifacts_ = nullptr;
  }

  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("engine_persistence_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  static core::OpineDb& db() { return *artifacts_->db; }

  static std::string Sql() {
    return "select * from " + db().schema().objective_table + " where \"" +
           artifacts_->pool[0].text + "\" limit 10";
  }

  static core::QueryResult MustExecute(const std::string& sql) {
    auto result = db().Execute(sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? std::move(*result) : core::QueryResult{};
  }

  static void ExpectBitIdentical(const core::QueryResult& want,
                                 const core::QueryResult& got) {
    ASSERT_EQ(want.results.size(), got.results.size());
    for (size_t i = 0; i < want.results.size(); ++i) {
      EXPECT_EQ(want.results[i].entity, got.results[i].entity);
      EXPECT_EQ(want.results[i].score, got.results[i].score);  // Bit-exact.
    }
  }

  std::string dir() const { return dir_.string(); }

  fs::path dir_;
  static eval::DomainArtifacts* artifacts_;
};

eval::DomainArtifacts* EnginePersistenceTest::artifacts_ = nullptr;

TEST_F(EnginePersistenceTest, SaveOpenRoundTripsQueriesBitIdentically) {
  const auto golden = MustExecute(Sql());
  ASSERT_TRUE(db().SaveDatabase(dir()).ok());
  EXPECT_EQ(db().snapshot_generation(), 1u);
  ASSERT_TRUE(db().OpenDatabase(dir()).ok());
  EXPECT_EQ(db().snapshot_generation(), 1u);
  ExpectBitIdentical(golden, MustExecute(Sql()));
}

TEST_F(EnginePersistenceTest, SaveOpenSaveIsByteIdentical) {
  ASSERT_TRUE(db().SaveDatabase(dir()).ok());
  ASSERT_TRUE(db().OpenDatabase(dir()).ok());
  ASSERT_TRUE(db().SaveDatabase(dir()).ok());
  // Generations 1 and 2 hold the same logical state; their container
  // bytes (and hence every section payload) must be identical — the
  // serializers are deterministic and loading loses nothing.
  const std::string first =
      ReadFileBytes(dir_ / SnapshotStore::GenerationFileName(1));
  const std::string second =
      ReadFileBytes(dir_ / SnapshotStore::GenerationFileName(2));
  EXPECT_EQ(first, second);
}

TEST_F(EnginePersistenceTest, CorruptNewestGenerationFallsBackToGolden) {
  const auto golden1 = MustExecute(Sql());
  ASSERT_TRUE(db().SaveDatabase(dir()).ok());

  // Change the summaries (one extra unmatched phrase on entity 0),
  // producing generation 2 with genuinely different payload bytes.
  // Reaggregate cannot be the mutation here: earlier tests in this
  // fixture opened the engine from a snapshot, which clears the
  // extraction relation — rebuilding from it is now refused (see
  // ReaggregateAfterOpenIsRefused below) instead of silently wiping
  // the summaries as it used to.
  auto perturbed = db().tables().summaries;
  ASSERT_FALSE(perturbed.empty());
  ASSERT_FALSE(perturbed[0].empty());
  perturbed[0][0].AddUnmatched();
  ASSERT_TRUE(db().InstallSummaries(std::move(perturbed)).ok());
  ASSERT_TRUE(db().SaveDatabase(dir()).ok());
  ASSERT_EQ(db().snapshot_generation(), 2u);

  // Bit-rot the newest generation on disk.
  const fs::path gen2 = dir_ / SnapshotStore::GenerationFileName(2);
  const std::string gen2_bytes = ReadFileBytes(gen2);
  FlipByteInFile(gen2, gen2_bytes.size() / 2, 0x04);

  // OpenDatabase must fall back to generation 1 and serve its queries
  // bit-identically to the pre-save golden.
  ASSERT_TRUE(db().OpenDatabase(dir()).ok());
  EXPECT_EQ(db().snapshot_generation(), 1u);
  ExpectBitIdentical(golden1, MustExecute(Sql()));
}

// Regression (silent-wipe bugfix): once OpenDatabase replaced the
// summaries, the extraction relation no longer derives them, and
// Reaggregate must refuse with FailedPrecondition — zero epoch
// movement, served data untouched. Before the fix it rebuilt from the
// (empty) relation and silently zeroed every summary.
TEST_F(EnginePersistenceTest, ReaggregateAfterOpenIsRefused) {
  ASSERT_TRUE(db().SaveDatabase(dir()).ok());
  ASSERT_TRUE(db().OpenDatabase(dir()).ok());
  const auto golden = MustExecute(Sql());
  const uint64_t epoch = db().cache_epoch();

  auto status = db().Reaggregate(core::AggregationOptions());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(db().cache_epoch(), epoch)
      << "a refused mutation must not bump the epoch";
  ExpectBitIdentical(golden, MustExecute(Sql()));
}

TEST_F(EnginePersistenceTest, OpenEmptyDirectoryIsNotFound) {
  auto status = db().OpenDatabase(dir());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(EnginePersistenceTest, OpenAllCorruptIsDataLossAndEngineUntouched) {
  const auto golden = MustExecute(Sql());
  ASSERT_TRUE(db().SaveDatabase(dir()).ok());
  const fs::path gen1 = dir_ / SnapshotStore::GenerationFileName(1);
  FlipByteInFile(gen1, ReadFileBytes(gen1).size() / 3, 0x20);

  auto status = db().OpenDatabase(dir());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  // Vet-before-mutate: the failed open left the engine fully serving.
  ExpectBitIdentical(golden, MustExecute(Sql()));
}

TEST_F(EnginePersistenceTest, MissingSectionIsDataLoss) {
  SnapshotStore store(dir());
  std::ostringstream schema_bytes;
  ASSERT_TRUE(core::SaveSchema(db().schema(), &schema_bytes).ok());
  std::vector<SnapshotSection> sections(1);
  sections[0] = {"schema", std::move(schema_bytes).str()};
  ASSERT_TRUE(store.Commit(sections).ok());

  auto status = db().OpenDatabase(dir());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
}

TEST_F(EnginePersistenceTest, GenerationIsObservableInGaugeAndRootSpan) {
  ASSERT_TRUE(db().SaveDatabase(dir()).ok());
  ASSERT_TRUE(db().OpenDatabase(dir()).ok());
  const uint64_t generation = db().snapshot_generation();
  ASSERT_GT(generation, 0u);

  // kStats publishes the served-generation gauge on every query.
  db().SetTraceLevel(obs::TraceLevel::kStats);
  (void)MustExecute(Sql());
  EXPECT_EQ(obs::MetricsRegistry::Global()
                .GetGauge("storage.snapshot.generation")
                ->Value(),
            static_cast<double>(generation));

  // kFull stamps the generation onto the root query span.
  db().SetTraceLevel(obs::TraceLevel::kFull);
  const auto traced = MustExecute(Sql());
  ASSERT_NE(traced.trace, nullptr);
  EXPECT_NE(traced.trace->ToJson().find("snapshot_generation"),
            std::string::npos);
  db().SetTraceLevel(obs::TraceLevel::kOff);
}

TEST_F(EnginePersistenceTest, EntityCountMismatchIsInvalidArgument) {
  // A verified snapshot whose summaries cover zero entities cannot
  // serve this engine's corpus: typed InvalidArgument, engine untouched.
  SnapshotStore store(dir());
  std::ostringstream schema_bytes;
  ASSERT_TRUE(core::SaveSchema(db().schema(), &schema_bytes).ok());
  std::vector<SnapshotSection> sections(2);
  sections[0] = {"schema", std::move(schema_bytes).str()};
  sections[1] = {"summaries",
                 "opinedb-summaries 2\n" +
                     std::to_string(db().schema().num_attributes()) +
                     " 0\nend\n"};
  ASSERT_TRUE(store.Commit(sections).ok());

  const auto golden = MustExecute(Sql());
  auto status = db().OpenDatabase(dir());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  ExpectBitIdentical(golden, MustExecute(Sql()));
}

// ----------------------- interpretation-cache snapshot section (§5g).

/// Enables both caches, runs one query to warm the interpretation
/// cache, and returns the warm entry count.
size_t WarmCaches(core::OpineDb* db, const std::string& sql) {
  cache::CacheConfig on;
  on.enable_interpretation = true;
  on.enable_results = true;
  db->ConfigureCaches(on);
  auto warm = db->Execute(sql);
  EXPECT_TRUE(warm.ok()) << warm.status().ToString();
  return db->interpretation_cache()->size();
}

TEST_F(EnginePersistenceTest, WarmInterpretationCacheSurvivesSaveOpen) {
  const size_t warm_entries = WarmCaches(&db(), Sql());
  ASSERT_GT(warm_entries, 0u);
  const auto golden = MustExecute(Sql());

  ASSERT_TRUE(db().SaveDatabase(dir()).ok());
  ASSERT_TRUE(db().OpenDatabase(dir()).ok());

  // The reopened engine is warm: the saved entries are resident at the
  // fresh epoch, and the first post-open query is an interp-cache hit.
  EXPECT_EQ(db().interpretation_cache()->size(), warm_entries);
  const uint64_t hits_before = db().interpretation_cache()->hits();
  ExpectBitIdentical(golden, MustExecute(Sql()));
  EXPECT_GT(db().interpretation_cache()->hits(), hits_before)
      << "the reopened engine recomputed an interpretation it had saved";

  // With the warm cache resident, save -> open -> save still produces
  // byte-identical container payloads (the section serializer is
  // deterministic and loading loses nothing).
  ASSERT_TRUE(db().SaveDatabase(dir()).ok());
  const std::string first =
      ReadFileBytes(dir_ / SnapshotStore::GenerationFileName(1));
  const std::string second =
      ReadFileBytes(dir_ / SnapshotStore::GenerationFileName(2));
  EXPECT_EQ(first, second);
  db().ConfigureCaches(cache::CacheConfig());
}

TEST_F(EnginePersistenceTest, OldFormatSnapshotOpensColdWithoutError) {
  // A snapshot written before the cache layer existed (here: saved with
  // caches disabled, so no "interp_cache" section) must open on a
  // cache-enabled engine without error — just cold.
  const auto golden = MustExecute(Sql());
  ASSERT_TRUE(db().SaveDatabase(dir()).ok());

  cache::CacheConfig on;
  on.enable_interpretation = true;
  on.enable_results = true;
  db().ConfigureCaches(on);
  ASSERT_TRUE(db().OpenDatabase(dir()).ok());
  EXPECT_EQ(db().interpretation_cache()->size(), 0u);
  ExpectBitIdentical(golden, MustExecute(Sql()));
  db().ConfigureCaches(cache::CacheConfig());
}

TEST_F(EnginePersistenceTest, CorruptInterpSectionOpensColdGracefully) {
  // The interpretation cache is derived data: a snapshot whose
  // container verifies but whose interp payload fails to decode must
  // open cold, not fail the open (unlike schema/summaries corruption).
  ASSERT_GT(WarmCaches(&db(), Sql()), 0u);
  const auto golden = MustExecute(Sql());
  ASSERT_TRUE(db().SaveDatabase(dir()).ok());

  // Rebuild generation 2 with the interp payload truncated mid-entry —
  // the container checksums are valid, only the section is garbage.
  SnapshotStore store(dir());
  auto loaded = store.Recover();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  bool mangled = false;
  std::vector<SnapshotSection> sections = loaded->sections;
  for (auto& section : sections) {
    if (section.name != "interp_cache") continue;
    ASSERT_GT(section.payload.size(), 8u);
    section.payload.resize(section.payload.size() / 2);
    mangled = true;
  }
  ASSERT_TRUE(mangled) << "warm save did not write an interp_cache section";
  ASSERT_TRUE(store.Commit(sections).ok());

  ASSERT_TRUE(db().OpenDatabase(dir()).ok())
      << "derived-data corruption must never fail the open";
  EXPECT_EQ(db().snapshot_generation(), 2u);
  EXPECT_EQ(db().interpretation_cache()->size(), 0u)
      << "a half-decoded interp payload left entries resident";
  ExpectBitIdentical(golden, MustExecute(Sql()));
  db().ConfigureCaches(cache::CacheConfig());
}

}  // namespace
}  // namespace opinedb
