// Round-trip tests for the schema / summaries serializers: a save →
// load cycle must be bit-exact (doubles compared with EXPECT_EQ, no
// tolerance), and corrupt or truncated streams must produce clean
// Status errors — never exceptions, crashes, or huge allocations.
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache/interpretation_cache.h"
#include "core/serialize.h"

namespace opinedb::core {
namespace {

SubjectiveSchema MakeSchema() {
  SubjectiveSchema schema;
  schema.objective_table = "hotels";
  schema.key_column = "hotel_name";

  SubjectiveAttribute cleanliness;
  cleanliness.name = "room_cleanliness";
  cleanliness.summary_type.name = "room_cleanliness";
  cleanliness.summary_type.kind = SummaryKind::kLinearlyOrdered;
  cleanliness.summary_type.markers = {"spotless", "clean, mostly",
                                      "dirty"};
  cleanliness.linguistic_domain = {"sparkling clean", "bit dusty"};
  cleanliness.seeds.aspect_terms = {"room", "bathroom"};
  cleanliness.seeds.opinion_terms = {"clean", "dirty", "spotless"};
  schema.attributes.push_back(cleanliness);

  SubjectiveAttribute style;
  style.name = "bathroom_style";
  style.summary_type.name = "bathroom_style";
  style.summary_type.kind = SummaryKind::kCategorical;
  style.summary_type.markers = {"modern", "rustic"};
  // Empty linguistic domain and seeds: the minimal attribute.
  schema.attributes.push_back(style);
  return schema;
}

SubjectiveTables MakeSummaries(const SubjectiveSchema& schema) {
  constexpr size_t kEntities = 3;
  constexpr size_t kDim = 4;
  SubjectiveTables tables;
  tables.summaries.resize(schema.num_attributes());
  // Awkward doubles (1/3, pi-ish) so bit-exactness is actually tested.
  double v = 1.0 / 3.0;
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    const auto& type = schema.attributes[a].summary_type;
    for (size_t e = 0; e < kEntities; ++e) {
      MarkerSummary summary(&type, kDim);
      for (size_t m = 0; m < type.num_markers(); ++m) {
        MarkerCell cell;
        cell.count = v * 7.0;
        cell.mean_sentiment = v - 0.5;
        cell.centroid.resize(kDim);
        for (size_t d = 0; d < kDim; ++d) {
          cell.centroid[d] = static_cast<float>(v * (d + 1) - 0.6);
        }
        for (size_t r = 0; r < m + 1; ++r) {
          cell.provenance.push_back(
              static_cast<text::ReviewId>(e * 10 + r));
        }
        summary.RestoreCell(m, cell);
        v = v * 3.9 * (1.0 - v);  // Logistic map: irregular doubles.
      }
      summary.SetUnmatchedCount(v * 5.0);
      tables.summaries[a].push_back(std::move(summary));
    }
  }
  return tables;
}

// ------------------------------------------------------ Schema cycle.

TEST(SerializeRoundtripTest, SchemaRoundTripsExactly) {
  const SubjectiveSchema schema = MakeSchema();
  std::stringstream stream;
  ASSERT_TRUE(SaveSchema(schema, &stream).ok());
  auto loaded = LoadSchema(&stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->objective_table, schema.objective_table);
  EXPECT_EQ(loaded->key_column, schema.key_column);
  ASSERT_EQ(loaded->attributes.size(), schema.attributes.size());
  for (size_t a = 0; a < schema.attributes.size(); ++a) {
    const auto& want = schema.attributes[a];
    const auto& got = loaded->attributes[a];
    EXPECT_EQ(got.name, want.name);
    EXPECT_EQ(got.summary_type.kind, want.summary_type.kind);
    EXPECT_EQ(got.summary_type.markers, want.summary_type.markers);
    EXPECT_EQ(got.linguistic_domain, want.linguistic_domain);
    EXPECT_EQ(got.seeds.aspect_terms, want.seeds.aspect_terms);
    EXPECT_EQ(got.seeds.opinion_terms, want.seeds.opinion_terms);
  }
}

TEST(SerializeRoundtripTest, SchemaSecondCycleIsByteIdentical) {
  const SubjectiveSchema schema = MakeSchema();
  std::stringstream first;
  ASSERT_TRUE(SaveSchema(schema, &first).ok());
  auto loaded = LoadSchema(&first);
  ASSERT_TRUE(loaded.ok());
  std::stringstream second;
  ASSERT_TRUE(SaveSchema(*loaded, &second).ok());
  EXPECT_EQ(first.str(), second.str());
}

// --------------------------------------------------- Summaries cycle.

TEST(SerializeRoundtripTest, SummariesRoundTripBitExactly) {
  const SubjectiveSchema schema = MakeSchema();
  const SubjectiveTables tables = MakeSummaries(schema);
  std::stringstream stream;
  ASSERT_TRUE(SaveSummaries(tables, &stream).ok());
  auto loaded = LoadSummaries(schema, &stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  ASSERT_EQ(loaded->summaries.size(), tables.summaries.size());
  for (size_t a = 0; a < tables.summaries.size(); ++a) {
    ASSERT_EQ(loaded->summaries[a].size(), tables.summaries[a].size());
    for (size_t e = 0; e < tables.summaries[a].size(); ++e) {
      const auto& want = tables.summaries[a][e];
      const auto& got = loaded->summaries[a][e];
      ASSERT_EQ(got.num_markers(), want.num_markers());
      // Bit-exact: EXPECT_EQ on raw doubles/floats, no tolerance.
      EXPECT_EQ(got.unmatched_count(), want.unmatched_count());
      for (size_t m = 0; m < want.num_markers(); ++m) {
        const auto& want_cell = want.cell(m);
        const auto& got_cell = got.cell(m);
        EXPECT_EQ(got_cell.count, want_cell.count);
        EXPECT_EQ(got_cell.mean_sentiment, want_cell.mean_sentiment);
        ASSERT_EQ(got_cell.centroid.size(), want_cell.centroid.size());
        for (size_t d = 0; d < want_cell.centroid.size(); ++d) {
          EXPECT_EQ(got_cell.centroid[d], want_cell.centroid[d]);
        }
        EXPECT_EQ(got_cell.provenance, want_cell.provenance);
      }
    }
  }
}

TEST(SerializeRoundtripTest, SummariesSecondCycleIsByteIdentical) {
  const SubjectiveSchema schema = MakeSchema();
  const SubjectiveTables tables = MakeSummaries(schema);
  std::stringstream first;
  ASSERT_TRUE(SaveSummaries(tables, &first).ok());
  auto loaded = LoadSummaries(schema, &first);
  ASSERT_TRUE(loaded.ok());
  std::stringstream second;
  ASSERT_TRUE(SaveSummaries(*loaded, &second).ok());
  EXPECT_EQ(first.str(), second.str());
}

// ------------------------------------------- Corruption / truncation.

TEST(SerializeRoundtripTest, TruncatedSchemaStreamsErrCleanly) {
  const SubjectiveSchema schema = MakeSchema();
  std::stringstream stream;
  ASSERT_TRUE(SaveSchema(schema, &stream).ok());
  const std::string full = stream.str();
  // Every data-cutting prefix must load cleanly as an error, never crash
  // or throw. (full.size() - 1 only drops the trailing newline, which
  // the loader legitimately tolerates, so the loop stops before it.)
  for (size_t length = 0; length + 1 < full.size(); ++length) {
    std::stringstream truncated(full.substr(0, length));
    EXPECT_NO_THROW({
      auto loaded = LoadSchema(&truncated);
      EXPECT_FALSE(loaded.ok()) << "prefix length " << length;
    });
  }
}

TEST(SerializeRoundtripTest, TruncatedSummariesStreamsErrCleanly) {
  const SubjectiveSchema schema = MakeSchema();
  const SubjectiveTables tables = MakeSummaries(schema);
  std::stringstream stream;
  ASSERT_TRUE(SaveSummaries(tables, &stream).ok());
  const std::string full = stream.str();
  for (size_t length = 0; length + 1 < full.size(); ++length) {
    std::stringstream truncated(full.substr(0, length));
    EXPECT_NO_THROW({
      auto loaded = LoadSummaries(schema, &truncated);
      EXPECT_FALSE(loaded.ok()) << "prefix length " << length;
    });
  }
}

TEST(SerializeRoundtripTest, WrongMagicIsParseError) {
  std::stringstream schema_stream("definitely-not-a-schema 1\n");
  auto schema = LoadSchema(&schema_stream);
  ASSERT_FALSE(schema.ok());
  EXPECT_EQ(schema.status().code(), StatusCode::kParseError);

  std::stringstream summaries_stream("garbage 1\n0 0\n");
  auto summaries = LoadSummaries(MakeSchema(), &summaries_stream);
  ASSERT_FALSE(summaries.ok());
  EXPECT_EQ(summaries.status().code(), StatusCode::kParseError);
}

TEST(SerializeRoundtripTest, UnknownVersionIsNotSupported) {
  std::stringstream stream("opinedb-schema 99\n");
  auto loaded = LoadSchema(&stream);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotSupported);
}

TEST(SerializeRoundtripTest, ImplausibleStringLengthIsParseError) {
  // A corrupt netstring header must not attempt a petabyte allocation.
  std::stringstream stream("opinedb-schema 1\n99999999999999:x");
  auto loaded = LoadSchema(&stream);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

TEST(SerializeRoundtripTest, ImplausibleDimensionIsParseError) {
  const SubjectiveSchema schema = MakeSchema();
  // Valid header for schema (2 attributes, 1 entity), then a summary
  // row (entity 0) claiming a ludicrous centroid dimension.
  std::stringstream stream(
      "opinedb-summaries 2\n2 1\n0 3 0 999999999999\n");
  auto loaded = LoadSummaries(schema, &stream);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

TEST(SerializeRoundtripTest, ImplausibleProvenanceCountIsParseError) {
  const SubjectiveSchema schema = MakeSchema();
  // One marker cell whose provenance count would allocate gigabytes.
  std::stringstream stream(
      "opinedb-summaries 2\n2 1\n0 3 0 1\n1 0 0 99999999999\n");
  auto loaded = LoadSummaries(schema, &stream);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

TEST(SerializeRoundtripTest, AttributeCountMismatchIsInvalidArgument) {
  const SubjectiveSchema schema = MakeSchema();  // 2 attributes.
  std::stringstream stream("opinedb-summaries 2\n5 1\n");
  auto loaded = LoadSummaries(schema, &stream);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerializeRoundtripTest, ImplausibleEntityCountIsParseError) {
  const SubjectiveSchema schema = MakeSchema();
  // The loader preallocates per-entity slots, so a corrupt entity count
  // must be rejected before it turns into a giant allocation.
  std::stringstream stream("opinedb-summaries 2\n2 99999999999\n");
  auto loaded = LoadSummaries(schema, &stream);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

// ------------------------------------------------ Duplicate-key rows.

TEST(SerializeRoundtripTest, DuplicateAttributeNameIsInvalidArgument) {
  SubjectiveSchema schema = MakeSchema();
  schema.attributes[1].name = schema.attributes[0].name;
  schema.attributes[1].summary_type.name = schema.attributes[0].name;
  std::stringstream stream;
  // The saver is a dumb encoder; the loader is the gatekeeper.
  ASSERT_TRUE(SaveSchema(schema, &stream).ok());
  auto loaded = LoadSchema(&stream);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  // The error must name the offending key.
  EXPECT_NE(loaded.status().message().find("room_cleanliness"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST(SerializeRoundtripTest, DuplicateEntityRowIsInvalidArgument) {
  const SubjectiveSchema schema = MakeSchema();
  // Two entities, but both rows of attribute 0 claim entity 0 (dim 0,
  // three empty marker cells each, matching the schema's marker count).
  std::stringstream stream(
      "opinedb-summaries 2\n2 2\n"
      "0 3 0.5 0\n1 0 0\n1 0 0\n1 0 0\n"
      "0 3 0.5 0\n");
  auto loaded = LoadSummaries(schema, &stream);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("duplicate entity row 0"),
            std::string::npos)
      << loaded.status().ToString();
  EXPECT_NE(loaded.status().message().find("room_cleanliness"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST(SerializeRoundtripTest, OutOfRangeEntityRowIsParseError) {
  const SubjectiveSchema schema = MakeSchema();
  std::stringstream stream(
      "opinedb-summaries 2\n2 2\n"
      "0 3 0.5 0\n1 0 0\n1 0 0\n1 0 0\n"
      "7 3 0.5 0\n");
  auto loaded = LoadSummaries(schema, &stream);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  EXPECT_NE(loaded.status().message().find("out of range"),
            std::string::npos)
      << loaded.status().ToString();
}

// --------------------------------------- Byte / bit flip fuzzing.
//
// Beyond truncation: flip one byte (or one bit) at a random offset of a
// valid stream. Every mutation must either load as a clean Status error
// or load successfully into a value that re-serializes stably — never
// crash, throw, or hang. A flip can land in serialized whitespace or a
// numeral and still parse; "stable" means save(load(mutated)) is a
// fixed point of a further load/save cycle.

template <typename LoadFn, typename SaveFn>
void FuzzFlips(const std::string& golden, uint32_t seed, bool bit_level,
               const LoadFn& load, const SaveFn& save) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<size_t> pick_offset(0, golden.size() - 1);
  std::uniform_int_distribution<int> pick_bit(0, 7);
  std::uniform_int_distribution<int> pick_byte(1, 255);
  constexpr int kTrials = 2000;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::string mutated = golden;
    const size_t offset = pick_offset(rng);
    if (bit_level) {
      mutated[offset] = static_cast<char>(
          static_cast<unsigned char>(mutated[offset]) ^ (1u << pick_bit(rng)));
    } else {
      mutated[offset] = static_cast<char>(
          static_cast<unsigned char>(mutated[offset]) ^ pick_byte(rng));
    }
    ASSERT_NO_THROW({
      auto loaded = load(mutated);
      if (loaded.ok()) {
        const std::string once = save(*loaded);
        auto reloaded = load(once);
        ASSERT_TRUE(reloaded.ok())
            << "reload of accepted mutation failed at offset " << offset
            << ": " << reloaded.status().ToString();
        EXPECT_EQ(save(*reloaded), once)
            << "unstable round trip for mutation at offset " << offset;
      }
    }) << "mutation at offset " << offset << " (trial " << trial << ")";
  }
}

TEST(SerializeRoundtripTest, SchemaSurvivesRandomByteFlips) {
  std::stringstream stream;
  ASSERT_TRUE(SaveSchema(MakeSchema(), &stream).ok());
  const auto load = [](const std::string& bytes) {
    std::stringstream in(bytes);
    return LoadSchema(&in);
  };
  const auto save = [](const SubjectiveSchema& schema) {
    std::stringstream out;
    EXPECT_TRUE(SaveSchema(schema, &out).ok());
    return out.str();
  };
  FuzzFlips(stream.str(), /*seed=*/0x5eed0001, /*bit_level=*/false, load,
            save);
}

TEST(SerializeRoundtripTest, SchemaSurvivesRandomBitFlips) {
  std::stringstream stream;
  ASSERT_TRUE(SaveSchema(MakeSchema(), &stream).ok());
  const auto load = [](const std::string& bytes) {
    std::stringstream in(bytes);
    return LoadSchema(&in);
  };
  const auto save = [](const SubjectiveSchema& schema) {
    std::stringstream out;
    EXPECT_TRUE(SaveSchema(schema, &out).ok());
    return out.str();
  };
  FuzzFlips(stream.str(), /*seed=*/0x5eed0002, /*bit_level=*/true, load,
            save);
}

TEST(SerializeRoundtripTest, SummariesSurviveRandomByteFlips) {
  const SubjectiveSchema schema = MakeSchema();
  std::stringstream stream;
  ASSERT_TRUE(SaveSummaries(MakeSummaries(schema), &stream).ok());
  const auto load = [&schema](const std::string& bytes) {
    std::stringstream in(bytes);
    return LoadSummaries(schema, &in);
  };
  const auto save = [](const SubjectiveTables& tables) {
    std::stringstream out;
    EXPECT_TRUE(SaveSummaries(tables, &out).ok());
    return out.str();
  };
  FuzzFlips(stream.str(), /*seed=*/0x5eed0003, /*bit_level=*/false, load,
            save);
}

TEST(SerializeRoundtripTest, SummariesSurviveRandomBitFlips) {
  const SubjectiveSchema schema = MakeSchema();
  std::stringstream stream;
  ASSERT_TRUE(SaveSummaries(MakeSummaries(schema), &stream).ok());
  const auto load = [&schema](const std::string& bytes) {
    std::stringstream in(bytes);
    return LoadSummaries(schema, &in);
  };
  const auto save = [](const SubjectiveTables& tables) {
    std::stringstream out;
    EXPECT_TRUE(SaveSummaries(tables, &out).ok());
    return out.str();
  };
  FuzzFlips(stream.str(), /*seed=*/0x5eed0004, /*bit_level=*/true, load,
            save);
}

// --------------------------- Interpretation-cache payload (§5g).
//
// Same doctrine as schema/summaries, but the cache type is
// non-copyable (per-shard locks), so the fuzz loop is hand-rolled
// rather than reusing FuzzFlips.

cache::InterpretationCache::Entry MakeInterpEntry(double salt) {
  cache::InterpretationCache::Entry entry;
  entry.interpretation.method = InterpretMethod::kWord2Vec;
  entry.interpretation.conjunctive = true;
  entry.interpretation.confidence = 1.0 / 3.0 + salt;
  AtomInterpretation atom;
  atom.attribute = 1;
  atom.marker = 2;
  atom.score = 0.1234567890123456789 * (1.0 + salt);
  entry.interpretation.atoms.push_back(atom);
  atom.attribute = 0;
  atom.marker = 0;
  atom.score = -7.25e-12 + salt;
  entry.interpretation.atoms.push_back(atom);
  entry.rep = {0.25f + static_cast<float>(salt), -1.0f / 7.0f, 3.0e-30f};
  entry.sentiment = salt - 0.125;
  return entry;
}

std::string InterpGoldenBytes() {
  cache::InterpretationCache golden;
  golden.Insert("clean rooms", MakeInterpEntry(0.0));
  golden.Insert("quiet at night", MakeInterpEntry(0.5));
  auto fallback = MakeInterpEntry(0.25);
  fallback.interpretation.method = InterpretMethod::kTextFallback;
  fallback.interpretation.atoms.clear();
  fallback.rep.clear();
  golden.Insert("something obscure", fallback);
  std::ostringstream out;
  EXPECT_TRUE(cache::SaveInterpretationCache(golden, &out).ok());
  return out.str();
}

TEST(SerializeRoundtripTest, InterpCacheRoundTripsBitExactly) {
  const std::string bytes = InterpGoldenBytes();
  cache::InterpretationCache loaded;
  std::istringstream in(bytes);
  ASSERT_TRUE(cache::LoadInterpretationCache(&in, 4, &loaded).ok());
  ASSERT_EQ(loaded.size(), 3u);
  cache::InterpretationCache::Entry got;
  ASSERT_TRUE(loaded.Lookup("quiet at night", 4, &got));
  const auto want = MakeInterpEntry(0.5);
  EXPECT_EQ(got.interpretation.method, want.interpretation.method);
  EXPECT_EQ(got.interpretation.conjunctive, want.interpretation.conjunctive);
  EXPECT_EQ(got.interpretation.confidence, want.interpretation.confidence);
  ASSERT_EQ(got.interpretation.atoms.size(),
            want.interpretation.atoms.size());
  for (size_t a = 0; a < want.interpretation.atoms.size(); ++a) {
    EXPECT_EQ(got.interpretation.atoms[a].attribute,
              want.interpretation.atoms[a].attribute);
    EXPECT_EQ(got.interpretation.atoms[a].marker,
              want.interpretation.atoms[a].marker);
    // Bit-exact: EXPECT_EQ on raw doubles, no tolerance.
    EXPECT_EQ(got.interpretation.atoms[a].score,
              want.interpretation.atoms[a].score);
  }
  ASSERT_EQ(got.rep.size(), want.rep.size());
  for (size_t d = 0; d < want.rep.size(); ++d) {
    EXPECT_EQ(got.rep[d], want.rep[d]);
  }
  EXPECT_EQ(got.sentiment, want.sentiment);
  EXPECT_EQ(got.epoch, 4u) << "loaded entries must carry the open epoch";
}

TEST(SerializeRoundtripTest, InterpCacheSecondCycleIsByteIdentical) {
  const std::string first = InterpGoldenBytes();
  cache::InterpretationCache loaded;
  std::istringstream in(first);
  ASSERT_TRUE(cache::LoadInterpretationCache(&in, 1, &loaded).ok());
  std::ostringstream second;
  ASSERT_TRUE(cache::SaveInterpretationCache(loaded, &second).ok());
  EXPECT_EQ(first, second.str());
}

TEST(SerializeRoundtripTest, InterpCacheTruncationErrsCleanly) {
  const std::string full = InterpGoldenBytes();
  // Every data-cutting prefix errs and leaves the cache EMPTY — a
  // half-decoded payload must not leave entries resident (the engine
  // relies on this for the graceful cold open). As with the schema
  // loader, the final byte is the sentinel's trailing newline, which
  // formatted reads legitimately tolerate, so the loop stops before it.
  for (size_t length = 0; length + 1 < full.size(); ++length) {
    cache::InterpretationCache cache;
    cache.Insert("stale resident entry", MakeInterpEntry(0.0));
    std::istringstream truncated(full.substr(0, length));
    EXPECT_NO_THROW({
      const Status status =
          cache::LoadInterpretationCache(&truncated, 1, &cache);
      EXPECT_FALSE(status.ok()) << "prefix length " << length;
    });
    EXPECT_EQ(cache.size(), 0u)
        << "failed load left entries resident at prefix " << length;
  }
}

TEST(SerializeRoundtripTest, InterpCacheWrongMagicIsParseError) {
  cache::InterpretationCache cache;
  std::istringstream in("definitely-not-a-cache 1\n0\nend\n");
  const Status status = cache::LoadInterpretationCache(&in, 1, &cache);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kParseError);
}

TEST(SerializeRoundtripTest, InterpCacheUnknownVersionIsNotSupported) {
  cache::InterpretationCache cache;
  std::istringstream in("opinedb-interp-cache 99\n0\nend\n");
  const Status status = cache::LoadInterpretationCache(&in, 1, &cache);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotSupported);
}

TEST(SerializeRoundtripTest, InterpCacheImplausibleCountsAreParseErrors) {
  {
    cache::InterpretationCache cache;
    std::istringstream in("opinedb-interp-cache 1\n99999999999\n");
    const Status status = cache::LoadInterpretationCache(&in, 1, &cache);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kParseError);
  }
  {
    // A corrupt netstring header must not attempt a huge allocation.
    cache::InterpretationCache cache;
    std::istringstream in("opinedb-interp-cache 1\n1\n99999999999:x");
    const Status status = cache::LoadInterpretationCache(&in, 1, &cache);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kParseError);
  }
  {
    // Plausible key, ludicrous atom / embedding dimensions.
    cache::InterpretationCache cache;
    std::istringstream in(
        "opinedb-interp-cache 1\n1\n3:abc w 1 0.5 0 999999999 2\n");
    const Status status = cache::LoadInterpretationCache(&in, 1, &cache);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kParseError);
  }
}

TEST(SerializeRoundtripTest, InterpCacheSurvivesRandomBitFlips) {
  const std::string golden = InterpGoldenBytes();
  std::mt19937 rng(0x5eed0005);
  std::uniform_int_distribution<size_t> pick_offset(0, golden.size() - 1);
  std::uniform_int_distribution<int> pick_bit(0, 7);
  const auto load = [](const std::string& bytes,
                       cache::InterpretationCache* cache) {
    std::istringstream in(bytes);
    return cache::LoadInterpretationCache(&in, 1, cache);
  };
  const auto save = [](const cache::InterpretationCache& cache) {
    std::ostringstream out;
    EXPECT_TRUE(cache::SaveInterpretationCache(cache, &out).ok());
    return out.str();
  };
  constexpr int kTrials = 2000;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::string mutated = golden;
    const size_t offset = pick_offset(rng);
    mutated[offset] = static_cast<char>(
        static_cast<unsigned char>(mutated[offset]) ^ (1u << pick_bit(rng)));
    ASSERT_NO_THROW({
      cache::InterpretationCache cache;
      const Status status = load(mutated, &cache);
      if (status.ok()) {
        // Accepted mutations must re-serialize stably (canonical form).
        const std::string once = save(cache);
        cache::InterpretationCache reloaded;
        ASSERT_TRUE(load(once, &reloaded).ok())
            << "reload of accepted mutation failed at offset " << offset;
        EXPECT_EQ(save(reloaded), once)
            << "unstable round trip for mutation at offset " << offset;
      } else {
        EXPECT_EQ(cache.size(), 0u)
            << "rejected mutation left entries resident at offset "
            << offset;
      }
    }) << "mutation at offset " << offset << " (trial " << trial << ")";
  }
}

}  // namespace
}  // namespace opinedb::core
