// Hostile-input fuzz over the two decoders on the serving path: the
// incremental HTTP/1.1 request parser (server::HttpParser) and the
// JSON body decoder (server::JsonValue::Parse). 10k mutated, truncated
// and oversized inputs; the contract under ASan/UBSan:
//
//  - neither decoder ever crashes, over-reads or hangs;
//  - the parser always lands in kNeedMore, kComplete, or kError with a
//    typed status (400, 413 or 431) — never anything else;
//  - its internal buffering stays bounded by the configured limits plus
//    one feed's worth of slack (no allocation amplification);
//  - a valid request survives being fed at EVERY split point, one
//    chunk boundary at a time, parsing to identical fields;
//  - JSON parse failures are typed ParseErrors, and parse successes
//    round-trip sane values (nesting depth is hard-capped, so a
//    100k-bracket bomb cannot consume 100k stack frames).
//
// All randomness is std::mt19937_64 with fixed seeds: every failure
// reproduces.
#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "server/httpd.h"
#include "server/json.h"

namespace opinedb {
namespace {

using server::HttpParser;
using server::JsonValue;
using server::ParserLimits;

const char* const kValidRequests[] = {
    "GET /healthz HTTP/1.1\r\n\r\n",
    "GET /metrics HTTP/1.0\r\nConnection: keep-alive\r\n\r\n",
    "POST /query HTTP/1.1\r\nContent-Length: 16\r\n"
    "Content-Type: application/json\r\n\r\n{\"sql\": \"select\"}"
    /* 18 bytes declared 16: parser keeps surplus for pipelining */,
    "POST /query?trace=1&stats=0 HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}",
    "HEAD /healthz HTTP/1.1\r\nHost: opinedb\r\nAccept: */*\r\n\r\n",
    "POST /admin/snapshot/save HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
    "GET /a%20b/c?k=v%21&flag HTTP/1.1\r\nX-Tag: 1\r\n\r\n",
};

const char* const kValidJson[] = {
    "{}",
    "null",
    "true",
    "-12.5e3",
    "\"plain\"",
    "[1, 2.5, -3e-2, \"four\", null, true, false]",
    "{\"sql\": \"select * from hotels where \\\"clean room\\\" limit 5\", "
    "\"deadline_ms\": 250, \"stats\": true}",
    "{\"nested\": {\"a\": [{\"b\": 1}]}, \"u\": \"\\u00e9\\u20ac\\ud83d"
    "\\ude00\", \"esc\": \"\\\\\\\"\\n\\t\"}",
};

/// Feeds `wire` in one shot and returns the final state.
HttpParser::State ParseAll(std::string_view wire, HttpParser* parser) {
  return parser->Feed(wire);
}

void ExpectTypedOutcome(const HttpParser& parser) {
  switch (parser.state()) {
    case HttpParser::State::kNeedMore:
    case HttpParser::State::kComplete:
      break;
    case HttpParser::State::kError:
      EXPECT_TRUE(parser.error_status() == 400 ||
                  parser.error_status() == 413 ||
                  parser.error_status() == 431)
          << "untyped parser error " << parser.error_status();
      EXPECT_FALSE(parser.error_detail().empty());
      break;
  }
}

// ------------------------------------------------ Split-point sweeps.

TEST(HttpFuzzTest, ValidRequestsSurviveEverySplitPoint) {
  for (const char* wire_cstr : kValidRequests) {
    const std::string wire = wire_cstr;
    HttpParser reference;
    ASSERT_EQ(ParseAll(wire, &reference), HttpParser::State::kComplete)
        << wire;
    for (size_t split = 0; split <= wire.size(); ++split) {
      HttpParser parser;
      parser.Feed(std::string_view(wire).substr(0, split));
      const auto state = parser.Feed(std::string_view(wire).substr(split));
      ASSERT_EQ(state, HttpParser::State::kComplete)
          << wire << " split at " << split;
      EXPECT_EQ(parser.request().method, reference.request().method);
      EXPECT_EQ(parser.request().target, reference.request().target);
      EXPECT_EQ(parser.request().path, reference.request().path);
      EXPECT_EQ(parser.request().headers, reference.request().headers);
      EXPECT_EQ(parser.request().body, reference.request().body);
      EXPECT_EQ(parser.request().keep_alive, reference.request().keep_alive);
    }
  }
}

TEST(HttpFuzzTest, SingleByteFeedMatchesOneShotParse) {
  for (const char* wire_cstr : kValidRequests) {
    const std::string wire = wire_cstr;
    HttpParser reference;
    ASSERT_EQ(ParseAll(wire, &reference), HttpParser::State::kComplete);
    HttpParser parser;
    for (const char c : wire) {
      if (parser.state() != HttpParser::State::kNeedMore) break;
      parser.Feed(std::string_view(&c, 1));
    }
    ASSERT_EQ(parser.state(), HttpParser::State::kComplete) << wire;
    EXPECT_EQ(parser.request().target, reference.request().target);
    EXPECT_EQ(parser.request().body, reference.request().body);
  }
}

TEST(HttpFuzzTest, EveryTruncationIsNeedMoreOrError) {
  for (const char* wire_cstr : kValidRequests) {
    const std::string wire = wire_cstr;
    // A strict prefix of a valid request is never a protocol error —
    // at worst it waits for more bytes (it may already be complete
    // when the tail is pipelined surplus).
    for (size_t cut = 0; cut < wire.size(); ++cut) {
      HttpParser parser;
      const auto state =
          parser.Feed(std::string_view(wire).substr(0, cut));
      EXPECT_NE(state, HttpParser::State::kError)
          << wire << " truncated to " << cut;
    }
  }
}

// ------------------------------------------------- Mutation storms.

TEST(HttpFuzzTest, TenThousandMutatedRequestsNeverCrashOrOverbuffer) {
  std::mt19937_64 rng(0xF00DF00Du);
  const ParserLimits limits;  // 16 KiB headers, 1 MiB body.
  size_t completes = 0, errors = 0, need_more = 0;
  for (int iteration = 0; iteration < 10000; ++iteration) {
    std::string wire =
        kValidRequests[rng() % (sizeof(kValidRequests) /
                                sizeof(kValidRequests[0]))];
    // Apply 1-8 random mutations: byte flips, deletions, duplications,
    // truncations, and hostile insertions at arbitrary offsets.
    const int mutations = 1 + static_cast<int>(rng() % 8);
    for (int m = 0; m < mutations && !wire.empty(); ++m) {
      const size_t at = rng() % wire.size();
      switch (rng() % 5) {
        case 0:
          wire[at] = static_cast<char>(rng() & 0xFF);
          break;
        case 1:
          wire.erase(at, 1 + rng() % 3);
          break;
        case 2:
          wire.insert(at, 1, static_cast<char>(rng() & 0xFF));
          break;
        case 3:
          wire.resize(at);
          break;
        case 4: {
          static const char* kHostile[] = {
              "\r\n", "\r\n\r\n", ": ", "Content-Length: 99999999",
              "Transfer-Encoding: chunked\r\n", "%zz", "%", "\x00\x01",
              " HTTP/1.1", "\n\t obs-fold",
          };
          wire.insert(at, kHostile[rng() % 10]);
          break;
        }
      }
    }
    HttpParser parser(limits);
    // Feed in random-sized chunks, the way a socket would deliver.
    size_t offset = 0;
    while (offset < wire.size() &&
           parser.state() == HttpParser::State::kNeedMore) {
      const size_t chunk = 1 + rng() % 577;
      const size_t len = std::min(chunk, wire.size() - offset);
      parser.Feed(std::string_view(wire).substr(offset, len));
      offset += len;
      // Bounded buffering: limits plus one chunk of slack.
      ASSERT_LE(parser.buffered_bytes(),
                limits.max_header_bytes + limits.max_body_bytes + 577)
          << "iteration " << iteration;
    }
    ExpectTypedOutcome(parser);
    switch (parser.state()) {
      case HttpParser::State::kComplete: ++completes; break;
      case HttpParser::State::kError: ++errors; break;
      case HttpParser::State::kNeedMore: ++need_more; break;
    }
  }
  // The storm must actually exercise all three outcomes.
  EXPECT_GT(completes, 0u);
  EXPECT_GT(errors, 0u);
  EXPECT_GT(need_more, 0u);
}

TEST(HttpFuzzTest, EverySingleByteCorruptionIsTypedOrParses) {
  for (const char* wire_cstr : kValidRequests) {
    const std::string wire = wire_cstr;
    for (size_t at = 0; at < wire.size(); ++at) {
      for (const char corrupt :
           {'\0', '\r', '\n', ' ', ':', '%', '\x7f', '\xff'}) {
        std::string mutated = wire;
        mutated[at] = corrupt;
        HttpParser parser;
        ParseAll(mutated, &parser);
        ExpectTypedOutcome(parser);
      }
    }
  }
}

// --------------------------------------------------- Oversize inputs.

TEST(HttpFuzzTest, OversizedInputsFailWithTheRightStatus) {
  {
    // Unterminated header block past the limit: 431.
    HttpParser parser;
    std::string wire = "GET / HTTP/1.1\r\nX-P: ";
    wire += std::string(20 * 1024, 'a');
    ASSERT_EQ(ParseAll(wire, &parser), HttpParser::State::kError);
    EXPECT_EQ(parser.error_status(), 431);
  }
  {
    // Terminated but oversized header block: 431.
    HttpParser parser;
    std::string wire = "GET / HTTP/1.1\r\nX-P: ";
    wire += std::string(20 * 1024, 'a');
    wire += "\r\n\r\n";
    ASSERT_EQ(ParseAll(wire, &parser), HttpParser::State::kError);
    EXPECT_EQ(parser.error_status(), 431);
  }
  {
    // Declared body beyond the limit: 413 before any body byte arrives.
    HttpParser parser;
    ASSERT_EQ(ParseAll("POST /query HTTP/1.1\r\n"
                       "Content-Length: 1048577\r\n\r\n",
                       &parser),
              HttpParser::State::kError);
    EXPECT_EQ(parser.error_status(), 413);
  }
  {
    // Content-Length overflow bait: rejected as 400, not wrapped.
    HttpParser parser;
    ASSERT_EQ(ParseAll("POST / HTTP/1.1\r\n"
                       "Content-Length: 99999999999999999999999\r\n\r\n",
                       &parser),
              HttpParser::State::kError);
    EXPECT_EQ(parser.error_status(), 400);
  }
}

TEST(HttpFuzzTest, ProtocolViolationsAreAll400) {
  const char* const kBad[] = {
      "\r\n\r\n",
      "GET\r\n\r\n",
      "GET /\r\n\r\n",
      "GET / HTTP/2.0\r\n\r\n",
      "GET / HTTP/1.1 extra\r\n\r\n",
      "G@T / HTTP/1.1\r\n\r\n",
      "get / HTTP/1.1\r\n\r\n",
      "GET nopath HTTP/1.1\r\n\r\n",
      "GET /%zz HTTP/1.1\r\n\r\n",
      "GET /%0 HTTP/1.1\r\n\r\n",
      "GET /%00 HTTP/1.1\r\n\r\n",
      "GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",
      "GET / HTTP/1.1\r\n: empty-name\r\n\r\n",
      "GET / HTTP/1.1\r\nBad Name: v\r\n\r\n",
      "GET / HTTP/1.1\r\nX: a\r\n folded\r\n\r\n",
      "GET / HTTP/1.1\r\nX: bell\x07\r\n\r\n",
      "POST / HTTP/1.1\r\nContent-Length: 12x\r\n\r\n",
      "POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\n",
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
  };
  for (const char* wire : kBad) {
    HttpParser parser;
    ASSERT_EQ(ParseAll(wire, &parser), HttpParser::State::kError)
        << "accepted: " << wire;
    EXPECT_EQ(parser.error_status(), 400) << wire;
  }
}

// ------------------------------------------------------- JSON decoder.

TEST(JsonFuzzTest, ValidDocumentsParse) {
  for (const char* text : kValidJson) {
    auto doc = JsonValue::Parse(text);
    EXPECT_TRUE(doc.ok()) << text << ": " << doc.status().ToString();
  }
}

TEST(JsonFuzzTest, TenThousandMutatedBodiesNeverCrash) {
  std::mt19937_64 rng(0xBADC0FFEu);
  size_t parsed = 0, rejected = 0;
  for (int iteration = 0; iteration < 10000; ++iteration) {
    std::string text =
        kValidJson[rng() % (sizeof(kValidJson) / sizeof(kValidJson[0]))];
    const int mutations = 1 + static_cast<int>(rng() % 6);
    for (int m = 0; m < mutations && !text.empty(); ++m) {
      const size_t at = rng() % text.size();
      switch (rng() % 4) {
        case 0: text[at] = static_cast<char>(rng() & 0xFF); break;
        case 1: text.erase(at, 1); break;
        case 2: text.insert(at, 1, static_cast<char>(rng() & 0xFF)); break;
        case 3: text.resize(at); break;
      }
    }
    auto doc = JsonValue::Parse(text);
    if (doc.ok()) {
      ++parsed;
    } else {
      ++rejected;
      EXPECT_EQ(doc.status().code(), StatusCode::kParseError) << text;
    }
  }
  EXPECT_GT(parsed, 0u);
  EXPECT_GT(rejected, 0u);
}

TEST(JsonFuzzTest, EveryTruncationOfValidDocsIsHandled) {
  for (const char* text_cstr : kValidJson) {
    const std::string text = text_cstr;
    for (size_t cut = 0; cut < text.size(); ++cut) {
      auto doc = JsonValue::Parse(text.substr(0, cut));
      if (!doc.ok()) {
        EXPECT_EQ(doc.status().code(), StatusCode::kParseError);
      }
    }
  }
}

TEST(JsonFuzzTest, NestingBombsAreRejectedNotRecursed) {
  // 100k brackets: without the depth cap this would be 100k recursive
  // frames — a stack overflow, not a parse error.
  const std::string array_bomb(100000, '[');
  auto arrays = JsonValue::Parse(array_bomb);
  ASSERT_FALSE(arrays.ok());
  EXPECT_EQ(arrays.status().code(), StatusCode::kParseError);

  std::string object_bomb;
  for (int i = 0; i < 100000; ++i) object_bomb += "{\"k\":";
  auto objects = JsonValue::Parse(object_bomb);
  ASSERT_FALSE(objects.ok());
  EXPECT_EQ(objects.status().code(), StatusCode::kParseError);

  // Exactly at the cap parses; one past it is rejected.
  std::string at_cap;
  for (int i = 0; i < 64; ++i) at_cap += "[";
  at_cap += "1";
  for (int i = 0; i < 64; ++i) at_cap += "]";
  EXPECT_TRUE(JsonValue::Parse(at_cap).ok());
  EXPECT_FALSE(JsonValue::Parse("[" + at_cap + "]").ok());
}

TEST(JsonFuzzTest, HostileScalarsAreTyped) {
  const char* const kBad[] = {
      "",           " ",          "nul",        "tru",        "falsey",
      "+1",         "1.",         ".5",         "01",         "1e",
      "1e+",        "0x10",       "NaN",        "Infinity",   "-",
      "\"unterminated",            "\"bad \\q escape\"",
      "\"\\u12\"",  "\"\\ud800\"" /* lone surrogate */,
      "{\"k\" 1}",  "{\"k\": 1,}", "[1 2]",     "[1,]",       "{,}",
      "{1: 2}",     "1 2" /* trailing token */, "{} {}",      "\"a\"b",
  };
  for (const char* text : kBad) {
    auto doc = JsonValue::Parse(text);
    EXPECT_FALSE(doc.ok()) << "accepted: " << text;
  }
  // Huge magnitudes must come back finite-or-error, never UB.
  auto big = JsonValue::Parse("1e309");
  if (big.ok()) {
    ADD_FAILURE() << "non-finite number accepted";
  }
}

TEST(JsonFuzzTest, DuplicateKeysLastWinsAndLookupsAreTotal) {
  auto doc = JsonValue::Parse(
      "{\"k\": 1, \"k\": 2, \"other\": {\"inner\": true}}");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->GetNumber("k"), std::make_optional(2.0));
  EXPECT_EQ(doc->GetNumber("missing"), std::nullopt);
  EXPECT_EQ(doc->GetString("k"), std::nullopt);  // Wrong type: empty.
  const JsonValue* other = doc->Find("other");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->GetBool("inner"), std::make_optional(true));
  // Scalar accessors on mismatched kinds fall back, never trap.
  EXPECT_EQ(other->AsNumber(-1.0), -1.0);
  EXPECT_TRUE(doc->items().empty());
}

TEST(JsonFuzzTest, UnicodeEscapesRoundTripUtf8) {
  auto doc = JsonValue::Parse(
      "{\"s\": \"caf\\u00e9 \\u20ac \\ud83d\\ude00\"}");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->GetString("s"),
            std::make_optional<std::string>(
                "caf\xc3\xa9 \xe2\x82\xac \xf0\x9f\x98\x80"));
}

}  // namespace
}  // namespace opinedb
