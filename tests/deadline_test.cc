// Deadline / cancellation tests for the serving path (DESIGN.md §5e):
//
//  - An expired or tiny budget makes ExecuteQuery return promptly with
//    partial = true and a prefix-consistent ranking — every emitted
//    score is the exact full score, never a fabricated one.
//  - A huge budget is indistinguishable from no deadline: bit-identical
//    results across 1/8 threads, trace off/full, and every forced plan
//    (the §5b/§5c/§5d contracts extended to the deadline machinery).
//  - A pre-cancelled CancellationToken behaves like an expired budget.
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/deadline.h"
#include "core/degree_cache.h"
#include "datagen/domain_spec.h"
#include "eval/experiment.h"
#include "obs/trace.h"

namespace opinedb {
namespace {

class DeadlineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eval::BuildOptions options;
    options.generator.num_entities = 25;
    options.generator.min_reviews_per_entity = 8;
    options.generator.max_reviews_per_entity = 16;
    options.generator.seed = 31;
    options.seed = 31;
    options.extractor_training_sentences = 400;
    options.predicate_pool_size = 40;
    options.membership_training_tuples = 400;
    artifacts_ = new eval::DomainArtifacts(
        eval::BuildArtifacts(datagen::HotelDomain(), options));
  }

  static void TearDownTestSuite() {
    delete artifacts_;
    artifacts_ = nullptr;
  }

  static core::OpineDb& db() { return *artifacts_->db; }

  static std::vector<std::string> Queries() {
    const auto& pool = artifacts_->pool;
    std::vector<std::string> queries;
    queries.push_back("select * from hotels where \"" + pool[0].text +
                      "\" limit 5");
    queries.push_back("select * from hotels where \"" + pool[1].text +
                      "\" and \"" + pool[2].text + "\" limit 4");
    queries.push_back("select * from hotels where rating > 2.5 and \"" +
                      pool[0].text + "\" limit 6");
    return queries;
  }

  static eval::DomainArtifacts* artifacts_;
};

eval::DomainArtifacts* DeadlineTest::artifacts_ = nullptr;

void ExpectBitIdentical(const core::QueryResult& reference,
                        const core::QueryResult& actual) {
  ASSERT_EQ(reference.results.size(), actual.results.size());
  for (size_t i = 0; i < reference.results.size(); ++i) {
    EXPECT_EQ(reference.results[i].entity, actual.results[i].entity);
    EXPECT_EQ(reference.results[i].entity_name,
              actual.results[i].entity_name);
    EXPECT_EQ(reference.results[i].score, actual.results[i].score);
  }
}

TEST_F(DeadlineTest, ExpiredBudgetReturnsPartialPromptly) {
  for (const auto& sql : Queries()) {
    SCOPED_TRACE(sql);
    core::QueryControl control;
    control.deadline = QueryDeadline::AfterMillis(0.0);
    auto run = db().Execute(sql, control);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_TRUE(run->partial);
    // Nothing was scored before expiry, so the consistent prefix is
    // empty — crucially, no fabricated scores are emitted.
    EXPECT_TRUE(run->results.empty());
    EXPECT_EQ(run->stats.entities_scored, 0u);
    // "Within 2x budget" with a scheduling-noise floor: an expired
    // deadline must never run the scoring fan-out.
    EXPECT_LT(run->stats.total_ms, 500.0);
  }
}

TEST_F(DeadlineTest, PreCancelledTokenBehavesLikeExpiredBudget) {
  CancellationToken token;
  token.Cancel();
  core::QueryControl control;
  control.deadline.set_token(&token);
  auto run = db().Execute(Queries()[0], control);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->partial);
  EXPECT_TRUE(run->results.empty());
}

// Partial results are prefix-consistent: whatever subset of the ranking
// survives an arbitrary mid-flight expiry, every emitted score must be
// the exact score the unbounded query computes for that entity.
TEST_F(DeadlineTest, PartialResultsCarryExactScores) {
  for (const auto& sql : Queries()) {
    // References: one with the query's own limit (for the exact-match
    // case) and one unlimited (a partial prefix's top-k may contain
    // entities the full ranking cuts off at `limit`, but every one of
    // them must still carry its exact full score).
    auto reference = db().Execute(sql);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    const std::string unlimited_sql =
        sql.substr(0, sql.rfind(" limit ")) + " limit 1000";
    auto unlimited = db().Execute(unlimited_sql);
    ASSERT_TRUE(unlimited.ok()) << unlimited.status().ToString();
    std::map<text::EntityId, double> exact;
    for (const auto& r : unlimited->results) exact[r.entity] = r.score;
    for (const double budget_ms : {0.0, 0.01, 0.05, 0.2, 1.0, 4.0}) {
      for (const size_t threads : {1, 8}) {
        SCOPED_TRACE(sql + " budget=" + std::to_string(budget_ms) +
                     " threads=" + std::to_string(threads));
        db().SetNumThreads(threads);
        core::QueryControl control;
        control.deadline = QueryDeadline::AfterMillis(budget_ms);
        auto run = db().Execute(sql, control);
        ASSERT_TRUE(run.ok()) << run.status().ToString();
        if (!run->partial) {
          // Budget happened to suffice: must match exactly.
          ExpectBitIdentical(*reference, *run);
          continue;
        }
        EXPECT_LE(run->results.size(), reference->results.size());
        for (size_t i = 0; i < run->results.size(); ++i) {
          const auto& r = run->results[i];
          auto it = exact.find(r.entity);
          ASSERT_NE(it, exact.end())
              << "partial result emitted entity " << r.entity
              << " the full query filters out";
          EXPECT_EQ(r.score, it->second)
              << "partial result fabricated a score for entity "
              << r.entity;
          if (i > 0) {
            // Same total order as the full ranking.
            const auto& prev = run->results[i - 1];
            EXPECT_TRUE(prev.score > r.score ||
                        (prev.score == r.score && prev.entity < r.entity));
          }
        }
      }
    }
  }
  db().SetNumThreads(1);
}

// A deadline that never fires must be invisible: bit-identical to the
// unbounded run across threads x trace x forced plans.
TEST_F(DeadlineTest, HugeBudgetBitIdenticalToUnbounded) {
  core::DegreeCache cache(&db());
  db().AttachDegreeCache(&cache);
  for (const auto& sql : Queries()) {
    db().SetNumThreads(1);
    db().SetTraceLevel(obs::TraceLevel::kOff);
    db().mutable_options()->force_plan = core::PlanForce::kDenseScan;
    auto reference = db().Execute(sql);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    for (const auto force :
         {core::PlanForce::kAuto, core::PlanForce::kDenseScan,
          core::PlanForce::kFilteredScan, core::PlanForce::kTaTopK}) {
      for (const size_t threads : {1, 8}) {
        for (const auto level :
             {obs::TraceLevel::kOff, obs::TraceLevel::kFull}) {
          SCOPED_TRACE(sql + " force=" +
                       std::to_string(static_cast<int>(force)) +
                       " threads=" + std::to_string(threads) + " trace=" +
                       std::to_string(static_cast<int>(level)));
          db().SetNumThreads(threads);
          db().SetTraceLevel(level);
          db().mutable_options()->force_plan = force;
          CancellationToken token;  // Armed but never cancelled.
          core::QueryControl control;
          control.deadline = QueryDeadline::AfterMillis(1e9);
          control.deadline.set_token(&token);
          auto run = db().Execute(sql, control);
          ASSERT_TRUE(run.ok()) << run.status().ToString();
          EXPECT_FALSE(run->partial);
          EXPECT_FALSE(run->degraded);
          ExpectBitIdentical(*reference, *run);
        }
      }
    }
  }
  db().mutable_options()->force_plan = core::PlanForce::kAuto;
  db().SetTraceLevel(obs::TraceLevel::kOff);
  db().SetNumThreads(1);
  db().AttachDegreeCache(nullptr);
}

}  // namespace
}  // namespace opinedb
