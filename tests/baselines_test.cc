#include <gtest/gtest.h>

#include "baselines/attribute_baseline.h"
#include "baselines/gz12.h"
#include "text/tokenizer.h"

namespace opinedb::baselines {
namespace {

class AttributeBaselineTest : public ::testing::Test {
 protected:
  AttributeBaselineTest()
      : baseline_({{0.9, 0.1}, {0.2, 0.8}, {0.5, 0.5}},
                  {100.0, 50.0, 75.0}, {4.5, 3.0, 4.0}) {}

  AttributeBaseline baseline_;
  std::vector<int32_t> all_ = {0, 1, 2};
};

TEST_F(AttributeBaselineTest, ByPriceAscending) {
  auto ranking = baseline_.ByPrice(all_, 3);
  EXPECT_EQ(ranking, (Ranking{1, 2, 0}));
}

TEST_F(AttributeBaselineTest, ByRatingDescending) {
  auto ranking = baseline_.ByRating(all_, 3);
  EXPECT_EQ(ranking, (Ranking{0, 2, 1}));
}

TEST_F(AttributeBaselineTest, RespectsEligibilityAndK) {
  auto ranking = baseline_.ByPrice({0, 2}, 1);
  EXPECT_EQ(ranking, (Ranking{2}));
}

TEST_F(AttributeBaselineTest, BestOneAttributePicksOracleBest) {
  // Evaluation rewards rankings that put entity 1 first: only attribute 1
  // (scores 0.1 / 0.8 / 0.5) does that.
  auto evaluate = [](const Ranking& ranking) {
    return ranking.empty() || ranking[0] != 1 ? 0.0 : 1.0;
  };
  auto ranking = baseline_.BestOneAttribute(all_, 3, evaluate);
  ASSERT_FALSE(ranking.empty());
  EXPECT_EQ(ranking[0], 1);
}

TEST_F(AttributeBaselineTest, BestTwoAttributesSumsPairs) {
  // Sum of both attributes: entity 0 -> 1.0, entity 1 -> 1.0, entity 2 ->
  // 1.0; ties break by id, so any evaluation sees {0,1,2}.
  auto evaluate = [](const Ranking& ranking) {
    return static_cast<double>(ranking.size());
  };
  auto ranking = baseline_.BestTwoAttributes(all_, 3, evaluate);
  EXPECT_EQ(ranking.size(), 3u);
}

TEST_F(AttributeBaselineTest, NumAttributes) {
  EXPECT_EQ(baseline_.num_attributes(), 2u);
}

class Gz12Test : public ::testing::Test {
 protected:
  void SetUp() override {
    text::Tokenizer tokenizer;
    // Entity 0: clean-focused; entity 1: mentions "clean" once but mostly
    // negative words; entity 2: unrelated.
    index_.AddDocument(tokenizer.Tokenize(
        "clean room clean sheets spotless clean bathroom"));
    index_.AddDocument(
        tokenizer.Tokenize("clean but dirty dirty noisy rude"));
    index_.AddDocument(tokenizer.Tokenize("pasta pizza wine menu"));
  }

  index::InvertedIndex index_;
};

TEST_F(Gz12Test, RanksByKeywordFrequency) {
  Gz12Ranker ranker(&index_, nullptr);
  auto ranking = ranker.Rank({"clean rooms"}, 3);
  ASSERT_FALSE(ranking.empty());
  EXPECT_EQ(ranking[0].doc, 0);
}

TEST_F(Gz12Test, KeywordMatchingIsSentimentBlind) {
  // The documented weakness (paper Section 5.3): entity 1 matches "clean"
  // even though its reviews are negative — GZ12 still scores it > 0.
  Gz12Ranker ranker(&index_, nullptr);
  auto ranking = ranker.Rank({"clean"}, 3);
  bool found_negative_entity = false;
  for (const auto& scored : ranking) {
    if (scored.doc == 1 && scored.score > 0.0) found_negative_entity = true;
  }
  EXPECT_TRUE(found_negative_entity);
}

TEST_F(Gz12Test, MultiplePredicatesCombine) {
  Gz12Ranker ranker(&index_, nullptr);
  auto sum = ranker.Rank({"clean", "pizza"}, 3);
  // Both entity 0 and entity 2 should surface with positive scores.
  bool saw0 = false, saw2 = false;
  for (const auto& scored : sum) {
    if (scored.doc == 0 && scored.score > 0.0) saw0 = true;
    if (scored.doc == 2 && scored.score > 0.0) saw2 = true;
  }
  EXPECT_TRUE(saw0);
  EXPECT_TRUE(saw2);
}

TEST_F(Gz12Test, MaxCombinationSupported) {
  Gz12Options options;
  options.combine = Gz12Options::Combine::kMax;
  Gz12Ranker ranker(&index_, nullptr, options);
  auto ranking = ranker.Rank({"clean", "pizza"}, 3);
  EXPECT_FALSE(ranking.empty());
}

TEST_F(Gz12Test, RespectsK) {
  Gz12Ranker ranker(&index_, nullptr);
  EXPECT_EQ(ranker.Rank({"clean"}, 2).size(), 2u);
}

}  // namespace
}  // namespace opinedb::baselines
