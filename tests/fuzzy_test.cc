#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fuzzy/logic.h"
#include "fuzzy/threshold_algorithm.h"

namespace opinedb::fuzzy {
namespace {

TEST(FuzzyLogicTest, ProductVariantDefinitions) {
  EXPECT_DOUBLE_EQ(And(Variant::kProduct, 0.5, 0.4), 0.2);
  EXPECT_DOUBLE_EQ(Or(Variant::kProduct, 0.5, 0.4), 1.0 - 0.5 * 0.6);
  EXPECT_DOUBLE_EQ(Not(0.3), 0.7);
}

TEST(FuzzyLogicTest, GodelVariantDefinitions) {
  EXPECT_DOUBLE_EQ(And(Variant::kGodel, 0.5, 0.4), 0.4);
  EXPECT_DOUBLE_EQ(Or(Variant::kGodel, 0.5, 0.4), 0.5);
}

// T-norm laws, checked over a random sample (property-style).
class TNormLawTest : public ::testing::TestWithParam<Variant> {};

TEST_P(TNormLawTest, IdentityAndAnnihilator) {
  const Variant variant = GetParam();
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.Uniform();
    EXPECT_NEAR(And(variant, x, 1.0), x, 1e-12);
    EXPECT_NEAR(And(variant, x, 0.0), 0.0, 1e-12);
    EXPECT_NEAR(Or(variant, x, 0.0), x, 1e-12);
    EXPECT_NEAR(Or(variant, x, 1.0), 1.0, 1e-12);
  }
}

TEST_P(TNormLawTest, Commutativity) {
  const Variant variant = GetParam();
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.Uniform();
    const double y = rng.Uniform();
    EXPECT_NEAR(And(variant, x, y), And(variant, y, x), 1e-12);
    EXPECT_NEAR(Or(variant, x, y), Or(variant, y, x), 1e-12);
  }
}

TEST_P(TNormLawTest, Monotonicity) {
  const Variant variant = GetParam();
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    double x1 = rng.Uniform();
    double x2 = rng.Uniform();
    if (x1 > x2) std::swap(x1, x2);
    const double y = rng.Uniform();
    EXPECT_LE(And(variant, x1, y), And(variant, x2, y) + 1e-12);
    EXPECT_LE(Or(variant, x1, y), Or(variant, x2, y) + 1e-12);
  }
}

TEST_P(TNormLawTest, DeMorgan) {
  const Variant variant = GetParam();
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.Uniform();
    const double y = rng.Uniform();
    EXPECT_NEAR(Not(And(variant, x, y)), Or(variant, Not(x), Not(y)), 1e-12);
  }
}

TEST_P(TNormLawTest, AndBoundedByOperands) {
  const Variant variant = GetParam();
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.Uniform();
    const double y = rng.Uniform();
    const double a = And(variant, x, y);
    EXPECT_LE(a, std::min(x, y) + 1e-12);
    const double o = Or(variant, x, y);
    EXPECT_GE(o, std::max(x, y) - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, TNormLawTest,
                         ::testing::Values(Variant::kGodel,
                                           Variant::kProduct));

TEST(ExprTest, LeafEvaluation) {
  auto expr = Expr::Leaf(2);
  EXPECT_DOUBLE_EQ(
      expr->Evaluate(Variant::kProduct, [](size_t i) { return i * 0.1; }),
      0.2);
  EXPECT_EQ(expr->NumLeaves(), 3u);
}

TEST(ExprTest, AndOrNotTree) {
  // (p0 AND (p1 OR NOT p2))
  auto expr = Expr::MakeAnd(
      {Expr::Leaf(0),
       Expr::MakeOr({Expr::Leaf(1), Expr::MakeNot(Expr::Leaf(2))})});
  const std::vector<double> truths = {0.8, 0.3, 0.9};
  const double inner_or = 1.0 - (1.0 - 0.3) * (1.0 - 0.1);
  EXPECT_NEAR(expr->Evaluate(Variant::kProduct,
                             [&](size_t i) { return truths[i]; }),
              0.8 * inner_or, 1e-12);
  EXPECT_EQ(expr->NumLeaves(), 3u);
}

TEST(ExprTest, SingleChildCollapses) {
  auto expr = Expr::MakeAnd({Expr::Leaf(0)});
  EXPECT_EQ(expr->kind(), Expr::Kind::kLeaf);
}

TEST(ExprTest, ToStringIsReadable) {
  auto expr = Expr::MakeOr({Expr::Leaf(0), Expr::Leaf(1)});
  EXPECT_EQ(expr->ToString(), "(p0 OR p1)");
}

// ------------------------------------------------- Threshold Algorithm.

std::vector<std::vector<double>> RandomLists(size_t lists, size_t entities,
                                             uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> out(lists,
                                       std::vector<double>(entities));
  for (auto& list : out) {
    for (auto& v : list) v = rng.Uniform();
  }
  return out;
}

class TaTest : public ::testing::TestWithParam<Variant> {};

TEST_P(TaTest, MatchesFullScan) {
  const Variant variant = GetParam();
  for (uint64_t seed = 0; seed < 5; ++seed) {
    auto lists = RandomLists(3, 100, seed);
    auto ta = ThresholdAlgorithmTopK(lists, 10, variant);
    auto scan = FullScanTopK(lists, 10, variant);
    ASSERT_EQ(ta.size(), scan.size());
    for (size_t i = 0; i < ta.size(); ++i) {
      EXPECT_EQ(ta[i].entity, scan[i].entity) << "seed " << seed;
      EXPECT_NEAR(ta[i].score, scan[i].score, 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, TaTest,
                         ::testing::Values(Variant::kGodel,
                                           Variant::kProduct));

TEST(TaTest, EarlyTerminationDoesLessWork) {
  auto lists = RandomLists(2, 5000, 42);
  TaStats stats;
  ThresholdAlgorithmTopK(lists, 5, Variant::kProduct, &stats);
  // Sorted accesses bounded well below a full scan of both lists.
  EXPECT_LT(stats.sorted_accesses, 2u * 5000u / 2u);
}

TEST(TaTest, EmptyInputs) {
  const std::vector<std::vector<double>> empty;
  EXPECT_TRUE(ThresholdAlgorithmTopK(empty, 5, Variant::kProduct).empty());
  EXPECT_TRUE(FullScanTopK(empty, 5, Variant::kProduct).empty());
  std::vector<std::vector<double>> lists = {{0.5, 0.6}};
  EXPECT_TRUE(ThresholdAlgorithmTopK(lists, 0, Variant::kProduct).empty());
}

TEST(TaTest, KLargerThanEntities) {
  std::vector<std::vector<double>> lists = {{0.5, 0.9, 0.1}};
  auto top = ThresholdAlgorithmTopK(lists, 10, Variant::kProduct);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].entity, 1);
}

}  // namespace
}  // namespace opinedb::fuzzy
