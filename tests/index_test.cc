#include <gtest/gtest.h>

#include "index/inverted_index.h"
#include "text/tokenizer.h"

namespace opinedb::index {
namespace {

class IndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    text::Tokenizer tokenizer;
    const char* docs[] = {
        "the room was very clean and the staff was friendly",
        "dirty room with stained carpet and rude staff",
        "clean clean clean room spotless bathroom",
        "the food was delicious but the bar was crowded",
    };
    for (const char* doc : docs) {
      index_.AddDocument(tokenizer.Tokenize(doc));
    }
  }

  InvertedIndex index_;
};

TEST_F(IndexTest, Counts) {
  EXPECT_EQ(index_.num_documents(), 4u);
  EXPECT_GT(index_.average_doc_length(), 0.0);
  EXPECT_EQ(index_.DocumentFrequency("clean"), 2);
  EXPECT_EQ(index_.DocumentFrequency("staff"), 2);
  EXPECT_EQ(index_.DocumentFrequency("zzz"), 0);
}

TEST_F(IndexTest, TermFrequency) {
  EXPECT_EQ(index_.TermFrequency(2, "clean"), 3);
  EXPECT_EQ(index_.TermFrequency(0, "clean"), 1);
  EXPECT_EQ(index_.TermFrequency(1, "clean"), 0);
  EXPECT_EQ(index_.TermFrequency(0, "zzz"), 0);
}

TEST_F(IndexTest, IdfDecreasesWithFrequency) {
  // "the" appears in more documents than "delicious".
  EXPECT_LT(index_.Bm25Idf("the"), index_.Bm25Idf("delicious"));
  EXPECT_GT(index_.Idf("delicious"), index_.Idf("the"));
}

TEST_F(IndexTest, TopKRanksRepeatedTermHigher) {
  auto top = index_.TopK({"clean"}, 10);
  ASSERT_GE(top.size(), 2u);
  EXPECT_EQ(top[0].doc, 2);  // "clean clean clean ..."
}

TEST_F(IndexTest, TopKRespectsK) {
  auto top = index_.TopK({"room"}, 2);
  EXPECT_EQ(top.size(), 2u);
}

TEST_F(IndexTest, TopKOmitsZeroScores) {
  auto top = index_.TopK({"zzz"}, 10);
  EXPECT_TRUE(top.empty());
}

TEST_F(IndexTest, ScoreMatchesTopK) {
  auto top = index_.TopK({"clean", "staff"}, 10);
  for (const auto& scored : top) {
    EXPECT_NEAR(scored.score, index_.Score(scored.doc, {"clean", "staff"}),
                1e-9);
  }
}

TEST_F(IndexTest, ScoresDescending) {
  auto top = index_.TopK({"room", "clean", "staff"}, 10);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].score, top[i].score);
  }
}

TEST_F(IndexTest, WeightedTopKAppliesWeights) {
  // Zero out document 2; it must disappear from the "clean" ranking.
  std::vector<double> weights = {1.0, 1.0, 0.0, 1.0};
  auto top = index_.TopKWeighted({"clean"}, 10, weights);
  for (const auto& scored : top) EXPECT_NE(scored.doc, 2);

  // Boosting a document promotes it.
  weights = {10.0, 1.0, 0.01, 1.0};
  top = index_.TopKWeighted({"clean"}, 10, weights);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].doc, 0);
}

TEST(IndexEdgeTest, EmptyIndex) {
  InvertedIndex index;
  EXPECT_EQ(index.num_documents(), 0u);
  EXPECT_EQ(index.average_doc_length(), 0.0);
  EXPECT_TRUE(index.TopK({"x"}, 5).empty());
}

TEST(IndexEdgeTest, SingleDocument) {
  InvertedIndex index;
  index.AddDocument({"clean", "room"});
  auto top = index.TopK({"clean"}, 5);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].doc, 0);
  EXPECT_GT(top[0].score, 0.0);
}

TEST(IndexPropertyTest, Bm25MonotoneInTermFrequency) {
  // With identical doc lengths, higher tf must yield a higher score.
  InvertedIndex index;
  index.AddDocument({"clean", "a", "b", "c"});
  index.AddDocument({"clean", "clean", "b", "c"});
  index.AddDocument({"x", "y", "z", "w"});
  EXPECT_GT(index.Score(1, {"clean"}), index.Score(0, {"clean"}));
}

TEST(IndexPropertyTest, LengthNormalizationPenalizesLongDocs) {
  InvertedIndex index;
  std::vector<std::string> short_doc = {"clean", "room"};
  std::vector<std::string> long_doc = {"clean", "room"};
  for (int i = 0; i < 60; ++i) long_doc.push_back("filler");
  index.AddDocument(short_doc);
  index.AddDocument(long_doc);
  EXPECT_GT(index.Score(0, {"clean"}), index.Score(1, {"clean"}));
}

}  // namespace
}  // namespace opinedb::index
