#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace opinedb {
namespace {

// ---------------------------------------------------------------- Status.

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(), Status::NotFound("").code(),
      Status::AlreadyExists("").code(),   Status::OutOfRange("").code(),
      Status::ParseError("").code(),      Status::NotSupported("").code(),
      Status::Internal("").code(),
  };
  EXPECT_EQ(codes.size(), 7u);
}

// ---------------------------------------------------------------- Result.

TEST(ResultTest, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.value_or(3), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(3), 3);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

// ------------------------------------------------------------------- Rng.

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 20; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 15);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, IntCoversInclusiveRange) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Int(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(99);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.06);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(3);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(RngTest, SampleIndicesAreDistinctAndInRange) {
  Rng rng(21);
  auto sample = rng.SampleIndices(50, 10);
  EXPECT_EQ(sample.size(), 10u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (size_t idx : sample) EXPECT_LT(idx, 50u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(8);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

// ----------------------------------------------------------- StringUtil.

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("HeLLo World"), "hello world");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  abc  "), "abc");
  EXPECT_EQ(Trim("abc"), "abc");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  auto pieces = Split("a,,b", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "");
  EXPECT_EQ(pieces[2], "b");
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  auto pieces = SplitWhitespace("  a \t b \n c ");
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[2], "c");
}

TEST(StringUtilTest, JoinRoundTripsSplit) {
  std::vector<std::string> pieces = {"x", "y", "z"};
  EXPECT_EQ(Join(pieces, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, PrefixSuffixContains) {
  EXPECT_TRUE(StartsWith("select *", "select"));
  EXPECT_FALSE(StartsWith("sel", "select"));
  EXPECT_TRUE(EndsWith("rooms", "ms"));
  EXPECT_FALSE(EndsWith("ms", "rooms"));
  EXPECT_TRUE(Contains("really clean rooms", "clean"));
  EXPECT_FALSE(Contains("clean", "dirty"));
}

}  // namespace
}  // namespace opinedb
