// Columnar-vs-row differential harness (docs/SCALING.md): the columnar
// data plane is a pure layout change, so for randomized fixture queries
// the engine must return bit-identical RankedResult lists — same
// entities, same names, same raw doubles — with columnar on and off, at
// 1 and 8 threads, with tracing off and full, on the hotel and
// restaurant fixtures and on a generated scale fixture
// (OPINEDB_SCALE_TEST_ENTITIES entities; CI runs the Release sweep at
// 100k and the sanitizer sweeps at 20k). Also covers the ColumnarTable
// predicate sweep cell-by-cell against BoundColumnPredicate::Matches,
// the InstallSummaries validation rules, and the runtime cache-shard
// knobs. Built as its own binary labeled `scale`.
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache/interpretation_cache.h"
#include "cache/result_cache.h"
#include "common/rng.h"
#include "core/columnar.h"
#include "core/degree_cache.h"
#include "core/engine.h"
#include "datagen/domain_spec.h"
#include "datagen/scale.h"
#include "eval/experiment.h"
#include "obs/trace.h"
#include "storage/table.h"

namespace opinedb {
namespace {

size_t ScaleTestEntities() {
  const char* env = std::getenv("OPINEDB_SCALE_TEST_ENTITIES");
  if (env != nullptr) {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 20000;
}

// Bit-identical means EXPECT_EQ on the raw doubles — no tolerance.
void ExpectBitIdentical(const core::QueryResult& reference,
                        const core::QueryResult& actual) {
  ASSERT_EQ(reference.results.size(), actual.results.size());
  for (size_t i = 0; i < reference.results.size(); ++i) {
    EXPECT_EQ(reference.results[i].entity, actual.results[i].entity);
    EXPECT_EQ(reference.results[i].entity_name,
              actual.results[i].entity_name);
    EXPECT_EQ(reference.results[i].score, actual.results[i].score);
  }
}

/// Runs the full {columnar off/on} x {1, 8 threads} x {off, full trace}
/// sweep for each query: the reference is the row path, serial, trace
/// off; every other combination must match it bit-for-bit.
void RunColumnarSweep(core::OpineDb& db,
                      const std::vector<std::string>& queries) {
  for (const auto& sql : queries) {
    db.SetColumnar(false);
    db.SetNumThreads(1);
    db.SetTraceLevel(obs::TraceLevel::kOff);
    auto reference = db.Execute(sql);
    ASSERT_TRUE(reference.ok())
        << sql << ": " << reference.status().ToString();
    for (const bool columnar : {false, true}) {
      for (const size_t threads : {1, 8}) {
        for (const auto level :
             {obs::TraceLevel::kOff, obs::TraceLevel::kFull}) {
          SCOPED_TRACE(sql + " columnar=" + (columnar ? "on" : "off") +
                       " threads=" + std::to_string(threads) + " trace=" +
                       std::to_string(static_cast<int>(level)));
          db.SetColumnar(columnar);
          db.SetNumThreads(threads);
          db.SetTraceLevel(level);
          auto run = db.Execute(sql);
          ASSERT_TRUE(run.ok()) << run.status().ToString();
          ExpectBitIdentical(*reference, *run);
        }
      }
    }
  }
  db.SetColumnar(true);
  db.SetNumThreads(1);
  db.SetTraceLevel(obs::TraceLevel::kOff);
}

// ------------------------------------- Hotel / restaurant fixtures.

class ColumnarEquivalenceTest : public ::testing::TestWithParam<const char*> {
 protected:
  static void SetUpTestSuite() {
    {
      eval::BuildOptions options;
      options.generator.num_entities = 30;
      options.generator.min_reviews_per_entity = 10;
      options.generator.max_reviews_per_entity = 20;
      options.generator.seed = 31;
      options.seed = 31;
      options.extractor_training_sentences = 400;
      options.predicate_pool_size = 60;
      options.membership_training_tuples = 500;
      hotel_ = new eval::DomainArtifacts(
          eval::BuildArtifacts(datagen::HotelDomain(), options));
    }
    {
      eval::BuildOptions options;
      options.generator.num_entities = 25;
      options.generator.min_reviews_per_entity = 8;
      options.generator.max_reviews_per_entity = 16;
      options.generator.seed = 32;
      options.seed = 32;
      options.extractor_training_sentences = 400;
      options.predicate_pool_size = 60;
      options.membership_training_tuples = 500;
      restaurant_ = new eval::DomainArtifacts(
          eval::BuildArtifacts(datagen::RestaurantDomain(), options));
    }
  }

  static void TearDownTestSuite() {
    delete hotel_;
    hotel_ = nullptr;
    delete restaurant_;
    restaurant_ = nullptr;
  }

  static eval::DomainArtifacts& Fixture(const std::string& name) {
    return name == "hotel" ? *hotel_ : *restaurant_;
  }

  /// Deterministic randomized workload mixing subjective leaves,
  /// objective filters (every comparison op), boolean structure and
  /// limit boundaries.
  static std::vector<std::string> MakeQueries(const std::string& name) {
    const eval::DomainArtifacts& artifacts = Fixture(name);
    const std::string table = name == "hotel" ? "hotels" : "restaurants";
    std::vector<std::string> phrases;
    for (const auto& predicate : artifacts.pool) {
      if (phrases.size() >= 6) break;
      phrases.push_back(predicate.text);
    }
    const std::vector<std::string> objectives =
        name == "hotel"
            ? std::vector<std::string>{"price_pn < 280", "price_pn >= 150",
                                       "city = 'london'", "city != 'paris'",
                                       "rating > 2.5", "rating <= 4.0"}
            : std::vector<std::string>{"price_range <= 2",
                                       "cuisine = 'italian'",
                                       "cuisine != 'thai'", "rating > 2.5",
                                       "price_range >= 2", "rating < 4.5"};
    Rng rng(4321);
    auto phrase = [&] {
      return "\"" + phrases[rng.Below(phrases.size())] + "\"";
    };
    auto objective = [&] { return objectives[rng.Below(objectives.size())]; };
    const size_t limits[] = {0, 3, 10, 1000};
    std::vector<std::string> queries;
    for (int i = 0; i < 10; ++i) {
      std::string where;
      switch (i % 5) {
        case 0:  // Single subjective leaf (dense scan).
          where = phrase();
          break;
        case 1:  // Conjunctive all-subjective.
          where = phrase() + " and " + phrase();
          break;
        case 2:  // Hard objective + subjective (filtered scan, columnar
                 // predicate sweep).
          where = objective() + " and " + phrase();
          break;
        case 3:  // Two hard objectives + subjective.
          where = objective() + " and " + objective() + " and " + phrase();
          break;
        case 4:  // Objective under OR (soft) plus negation.
          where = "(" + objective() + " or " + phrase() + ") and not " +
                  phrase();
          break;
      }
      queries.push_back("select * from " + table + " where " + where +
                        " limit " + std::to_string(limits[rng.Below(4)]));
    }
    queries.push_back("select * from " + table + " limit 7");
    return queries;
  }

  static eval::DomainArtifacts* hotel_;
  static eval::DomainArtifacts* restaurant_;
};

eval::DomainArtifacts* ColumnarEquivalenceTest::hotel_ = nullptr;
eval::DomainArtifacts* ColumnarEquivalenceTest::restaurant_ = nullptr;

TEST_P(ColumnarEquivalenceTest, ColumnarBitIdenticalToRow) {
  core::OpineDb& db = *Fixture(GetParam()).db;
  RunColumnarSweep(db, MakeQueries(GetParam()));
}

// The degree-cache list materialization also goes through the columnar
// scorer; TA plans over a warm cache must stay bit-identical too.
TEST_P(ColumnarEquivalenceTest, WarmDegreeCacheBitIdentical) {
  core::OpineDb& db = *Fixture(GetParam()).db;
  core::DegreeCache cache(&db);
  db.AttachDegreeCache(&cache);
  RunColumnarSweep(db, MakeQueries(GetParam()));
  db.AttachDegreeCache(nullptr);
}

TEST_P(ColumnarEquivalenceTest, SetColumnarTogglesStoreWithoutEpochBump) {
  core::OpineDb& db = *Fixture(GetParam()).db;
  db.SetColumnar(true);
  EXPECT_NE(db.columnar_store(), nullptr);
  const uint64_t epoch = db.cache_epoch();
  db.SetColumnar(false);
  EXPECT_EQ(db.columnar_store(), nullptr);
  db.SetColumnar(true);
  EXPECT_NE(db.columnar_store(), nullptr);
  // Execution config, not a data mutation: cached results stay valid.
  EXPECT_EQ(db.cache_epoch(), epoch);
}

INSTANTIATE_TEST_SUITE_P(Domains, ColumnarEquivalenceTest,
                         ::testing::Values("hotel", "restaurant"));

// ------------------------------------------- Generated scale fixture.

class ScaleFixtureTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::ScaleSpec spec;
    spec.num_entities = ScaleTestEntities();
    fixture_ = new datagen::ScaledFixture(datagen::BuildScaledFixture(spec));
  }

  static void TearDownTestSuite() {
    delete fixture_;
    fixture_ = nullptr;
  }

  static datagen::ScaledFixture* fixture_;
};

datagen::ScaledFixture* ScaleFixtureTest::fixture_ = nullptr;

TEST_F(ScaleFixtureTest, ColumnarBitIdenticalToRowAtScale) {
  core::OpineDb& db = *fixture_->db;
  ASSERT_EQ(db.corpus().num_entities(), fixture_->spec.num_entities);
  Rng rng(99);
  std::vector<std::string> queries;
  for (int i = 0; i < 6; ++i) {
    const std::string& predicate = fixture_->subjective_predicates[rng.Below(
        fixture_->subjective_predicates.size())];
    std::string where = "\"" + predicate + "\"";
    if (i % 2 == 1) {
      where = "price_pn < " + std::to_string(80 + 40 * i) + " and " + where;
    }
    queries.push_back("select * from " + fixture_->table_name + " where " +
                      where + " limit 10");
  }
  RunColumnarSweep(db, queries);
}

TEST_F(ScaleFixtureTest, FixtureIsDeterministic) {
  // Same spec, small entity count: summaries and rankings reproduce
  // exactly across independent builds.
  datagen::ScaleSpec spec;
  spec.num_entities = 500;
  datagen::ScaledFixture a = datagen::BuildScaledFixture(spec);
  datagen::ScaledFixture b = datagen::BuildScaledFixture(spec);
  ASSERT_EQ(a.quality.size(), b.quality.size());
  for (size_t e = 0; e < a.quality.size(); ++e) {
    ASSERT_EQ(a.quality[e], b.quality[e]);
  }
  const std::string sql = "select * from " + a.table_name + " where \"" +
                          a.subjective_predicates[0] + "\" limit 10";
  auto ra = a.db->Execute(sql);
  auto rb = b.db->Execute(sql);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  ExpectBitIdentical(*ra, *rb);
}

// -------------------------------- ColumnarTable predicate differential.

storage::Table MixedTable() {
  storage::Table table("mixed", {{"name", storage::ValueType::kString},
                                 {"score", storage::ValueType::kDouble},
                                 {"count", storage::ValueType::kInt}});
  Rng rng(7);
  const char* names[] = {"alpha", "beta", "gamma", "delta", ""};
  for (int i = 0; i < 200; ++i) {
    storage::Value name = rng.Below(10) == 0
                              ? storage::Value::Null()
                              : storage::Value(std::string(names[rng.Below(5)]));
    storage::Value score = rng.Below(10) == 0
                               ? storage::Value::Null()
                               : storage::Value(rng.Uniform(-2.0, 5.0));
    storage::Value count =
        rng.Below(10) == 0
            ? storage::Value::Null()
            : storage::Value(static_cast<int64_t>(rng.Below(50)));
    EXPECT_TRUE(
        table.Append({std::move(name), std::move(score), std::move(count)})
            .ok());
  }
  return table;
}

TEST(ColumnarTableTest, EvalMatchesRowPredicateEverywhere) {
  storage::Table table = MixedTable();
  core::ColumnarTable columns(table);
  ASSERT_EQ(columns.num_rows(), table.num_rows());

  const std::vector<storage::Value> literals = {
      storage::Value(std::string("beta")),
      storage::Value(std::string("zeta")), storage::Value(std::string("")),
      storage::Value(1.5),
      storage::Value(static_cast<int64_t>(25)),
      storage::Value(static_cast<int64_t>(-1)),
      storage::Value::Null()};
  const storage::CompareOp ops[] = {
      storage::CompareOp::kEq, storage::CompareOp::kNe,
      storage::CompareOp::kLt, storage::CompareOp::kLe,
      storage::CompareOp::kGt, storage::CompareOp::kGe};
  size_t compiled_predicates = 0;
  for (const auto& column : table.columns()) {
    for (const auto& literal : literals) {
      for (const auto op : ops) {
        storage::ColumnPredicate predicate{column.name, op, literal};
        auto bound = predicate.Bind(table);
        ASSERT_TRUE(bound.ok());
        auto compiled = columns.Compile(*bound);
        ASSERT_TRUE(compiled.has_value())
            << column.name << " " << storage::CompareOpSymbol(op) << " "
            << literal.ToString();
        ++compiled_predicates;
        std::vector<uint8_t> match(table.num_rows(), 1);
        columns.FilterInto(*compiled, &match);
        for (size_t row = 0; row < table.num_rows(); ++row) {
          const bool expected = bound->Matches(table, row);
          SCOPED_TRACE(column.name + " " +
                       storage::CompareOpSymbol(op) + " " +
                       literal.ToString() + " row " + std::to_string(row));
          EXPECT_EQ(core::ColumnarTable::Eval(*compiled, row), expected);
          EXPECT_EQ(match[row] != 0, expected);
        }
      }
    }
  }
  EXPECT_EQ(compiled_predicates, 3u * literals.size() * 6u);
}

// --------------------------------------- InstallSummaries validation.

TEST(InstallSummariesTest, RejectsWrongShapes) {
  datagen::ScaleSpec spec;
  spec.num_entities = 200;
  datagen::ScaledFixture fixture = datagen::BuildScaledFixture(spec);
  core::OpineDb& db = *fixture.db;
  const size_t num_attributes = db.schema().num_attributes();

  // Wrong attribute count.
  EXPECT_FALSE(db.InstallSummaries({}).ok());

  // Wrong entity count in one attribute.
  std::vector<std::vector<core::MarkerSummary>> short_summaries;
  for (size_t a = 0; a < num_attributes; ++a) {
    short_summaries.emplace_back(
        a == 0 ? 100 : 200,
        core::MarkerSummary(&db.schema().attributes[a].summary_type, 4));
  }
  EXPECT_FALSE(db.InstallSummaries(std::move(short_summaries)).ok());
}

TEST(InstallSummariesTest, InstallBumpsEpochAndServesNewData) {
  datagen::ScaleSpec spec;
  spec.num_entities = 200;
  datagen::ScaledFixture fixture = datagen::BuildScaledFixture(spec);
  core::OpineDb& db = *fixture.db;
  const uint64_t epoch = db.cache_epoch();
  const size_t dim = db.phrase_embedder().dim();

  std::vector<std::vector<core::MarkerSummary>> summaries;
  for (size_t a = 0; a < db.schema().num_attributes(); ++a) {
    summaries.emplace_back(
        200, core::MarkerSummary(&db.schema().attributes[a].summary_type,
                                 dim));
  }
  ASSERT_TRUE(db.InstallSummaries(std::move(summaries)).ok());
  EXPECT_GT(db.cache_epoch(), epoch);
  // Queries still execute against the (now empty) summaries, row and
  // columnar alike.
  const std::string sql = "select * from " + fixture.table_name +
                          " where \"" + fixture.subjective_predicates[0] +
                          "\" limit 5";
  RunColumnarSweep(db, {sql});
}

// Regression (silent-wipe bugfix): InstallSummaries clears the
// extraction relation, so a later Reaggregate would rebuild the just-
// installed summaries from nothing. It must refuse with
// FailedPrecondition — zero epoch movement, installed data untouched —
// instead of silently zeroing every histogram as it used to.
TEST(InstallSummariesTest, ReaggregateAfterInstallIsRefused) {
  datagen::ScaleSpec spec;
  spec.num_entities = 200;
  datagen::ScaledFixture fixture = datagen::BuildScaledFixture(spec);
  core::OpineDb& db = *fixture.db;

  auto installed = db.tables().summaries;  // Same shape, same types.
  ASSERT_TRUE(db.InstallSummaries(std::move(installed)).ok());
  const uint64_t epoch = db.cache_epoch();
  const double mass_before = db.summary(0, 0).total_count() +
                             db.summary(0, 0).unmatched_count();

  auto status = db.Reaggregate(db.options().aggregation);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(db.cache_epoch(), epoch)
      << "a refused mutation must not bump the epoch";
  EXPECT_EQ(db.summary(0, 0).total_count() +
                db.summary(0, 0).unmatched_count(),
            mass_before)
      << "the installed summaries were modified by a refused Reaggregate";
}

// ------------------------------------------- Runtime shard knobs.

TEST(CacheShardKnobsTest, EngineHonorsConfiguredShardCounts) {
  eval::BuildOptions options;
  options.generator.num_entities = 12;
  options.generator.min_reviews_per_entity = 4;
  options.generator.max_reviews_per_entity = 8;
  options.seed = 77;
  options.generator.seed = 77;
  options.predicate_pool_size = 20;
  options.membership_training_tuples = 100;
  options.engine.cache.enable_results = true;
  options.engine.cache.enable_interpretation = true;
  options.engine.cache.result_cache_shards = 4;
  options.engine.cache.interp_cache_shards = 3;
  options.engine.degree_cache_shards = 5;
  auto artifacts = eval::BuildArtifacts(datagen::HotelDomain(), options);
  core::OpineDb& db = *artifacts.db;

  ASSERT_NE(db.result_cache(), nullptr);
  EXPECT_EQ(db.result_cache()->num_shards(), 4u);

  core::DegreeCache degree_cache(&db);
  EXPECT_EQ(degree_cache.num_shards(), 5u);
  core::DegreeCache explicit_cache(&db, 2);
  EXPECT_EQ(explicit_cache.num_shards(), 2u);

  // Reconfigure at runtime: shard counts follow the new config.
  cache::CacheConfig config = db.options().cache;
  config.result_cache_shards = 2;
  config.interp_cache_shards = 7;
  db.ConfigureCaches(config);
  ASSERT_NE(db.result_cache(), nullptr);
  EXPECT_EQ(db.result_cache()->num_shards(), 2u);

  // Degenerate counts clamp to one shard instead of crashing.
  cache::CacheConfig degenerate = db.options().cache;
  degenerate.result_cache_shards = 0;
  degenerate.interp_cache_shards = 0;
  db.ConfigureCaches(degenerate);
  ASSERT_NE(db.result_cache(), nullptr);
  EXPECT_EQ(db.result_cache()->num_shards(), 1u);

  cache::InterpretationCache standalone(0);
  EXPECT_EQ(standalone.num_shards(), 1u);
  cache::ResultCache standalone_results(1 << 20, 0);
  EXPECT_EQ(standalone_results.num_shards(), 1u);
}

}  // namespace
}  // namespace opinedb
