#include <cmath>

#include <gtest/gtest.h>

#include "eval/metrics.h"

namespace opinedb::eval {
namespace {

using extract::kAS;
using extract::kOP;
using extract::Span;

TEST(SpanF1Test, PerfectPrediction) {
  std::vector<std::vector<Span>> gold = {{{0, 2, kAS}, {3, 4, kOP}}};
  auto result = SpanF1(gold, gold);
  EXPECT_DOUBLE_EQ(result.precision, 1.0);
  EXPECT_DOUBLE_EQ(result.recall, 1.0);
  EXPECT_DOUBLE_EQ(result.f1, 1.0);
}

TEST(SpanF1Test, BoundaryMismatchCountsAsWrong) {
  std::vector<std::vector<Span>> gold = {{{0, 2, kAS}}};
  std::vector<std::vector<Span>> predicted = {{{0, 1, kAS}}};
  auto result = SpanF1(gold, predicted);
  EXPECT_DOUBLE_EQ(result.f1, 0.0);
}

TEST(SpanF1Test, TagMismatchCountsAsWrong) {
  std::vector<std::vector<Span>> gold = {{{0, 2, kAS}}};
  std::vector<std::vector<Span>> predicted = {{{0, 2, kOP}}};
  EXPECT_DOUBLE_EQ(SpanF1(gold, predicted).f1, 0.0);
}

TEST(SpanF1Test, PartialCredit) {
  std::vector<std::vector<Span>> gold = {{{0, 1, kAS}, {2, 3, kOP}}};
  std::vector<std::vector<Span>> predicted = {{{0, 1, kAS}}};
  auto result = SpanF1(gold, predicted);
  EXPECT_DOUBLE_EQ(result.precision, 1.0);
  EXPECT_DOUBLE_EQ(result.recall, 0.5);
  EXPECT_NEAR(result.f1, 2.0 / 3.0, 1e-12);
}

TEST(SpanF1Test, EmptyPredictionsZeroPrecisionDefined) {
  std::vector<std::vector<Span>> gold = {{{0, 1, kAS}}};
  std::vector<std::vector<Span>> predicted = {{}};
  auto result = SpanF1(gold, predicted);
  EXPECT_DOUBLE_EQ(result.precision, 0.0);
  EXPECT_DOUBLE_EQ(result.recall, 0.0);
  EXPECT_DOUBLE_EQ(result.f1, 0.0);
}

TEST(SpanF1ForTagTest, FiltersByTag) {
  std::vector<std::vector<Span>> gold = {{{0, 1, kAS}, {2, 3, kOP}}};
  std::vector<std::vector<Span>> predicted = {{{0, 1, kAS}, {5, 6, kOP}}};
  EXPECT_DOUBLE_EQ(SpanF1ForTag(gold, predicted, kAS).f1, 1.0);
  EXPECT_DOUBLE_EQ(SpanF1ForTag(gold, predicted, kOP).f1, 0.0);
}

TEST(SatScoreTest, DiscountsByRank) {
  // Two results, each satisfying 2 predicates.
  std::vector<std::vector<bool>> satisfied = {{true, true}, {true, true}};
  const double expected = 2.0 / std::log2(2.0) + 2.0 / std::log2(3.0);
  EXPECT_NEAR(SatScore(satisfied), expected, 1e-12);
}

TEST(SatScoreTest, TopRankMattersMore) {
  std::vector<std::vector<bool>> good_first = {{true, true}, {false, false}};
  std::vector<std::vector<bool>> good_last = {{false, false}, {true, true}};
  EXPECT_GT(SatScore(good_first), SatScore(good_last));
}

TEST(SatScoreTest, EmptyIsZero) { EXPECT_EQ(SatScore({}), 0.0); }

TEST(SatMaxTest, IdealOrderingScoresHighest) {
  // Counts {2, 0, 1} with k=2 -> ideal picks 2 then 1.
  const double expected = 2.0 / std::log2(2.0) + 1.0 / std::log2(3.0);
  EXPECT_NEAR(SatMax({2, 0, 1}, 2, 2), expected, 1e-12);
}

TEST(SatMaxTest, CountsClampedToNumPredicates) {
  EXPECT_NEAR(SatMax({5}, 1, 2), 2.0, 1e-12);
}

TEST(SatMaxTest, UpperBoundsAnyActualRanking) {
  std::vector<int> counts = {1, 3, 0, 2, 2};
  const double best = SatMax(counts, 3, 3);
  // Any concrete ordering of entities scores <= SatMax.
  std::vector<std::vector<bool>> some_order = {
      {true, false, false}, {true, true, false}, {false, false, false}};
  EXPECT_LE(SatScore(some_order), best);
}

TEST(StatsTest, MeanStdDevCi) {
  std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(values), 2.5);
  EXPECT_NEAR(StdDev(values), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_NEAR(ConfidenceInterval95(values),
              1.96 * StdDev(values) / 2.0, 1e-12);
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(StdDev({1.0}), 0.0);
  EXPECT_EQ(ConfidenceInterval95({1.0}), 0.0);
}

}  // namespace
}  // namespace opinedb::eval
