#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/kmeans.h"
#include "ml/logistic_regression.h"
#include "ml/naive_bayes.h"
#include "ml/perceptron_tagger.h"

namespace opinedb::ml {
namespace {

// -------------------------------------------------- LogisticRegression.

std::vector<Example> LinearlySeparable(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Example> examples;
  for (int i = 0; i < n; ++i) {
    Example ex;
    const double x = rng.Uniform(-1, 1);
    const double y = rng.Uniform(-1, 1);
    ex.features = {x, y};
    ex.label = (x + y > 0.0) ? 1 : 0;
    examples.push_back(std::move(ex));
  }
  return examples;
}

TEST(LogisticRegressionTest, LearnsSeparableData) {
  auto train = LinearlySeparable(400, 1);
  auto test = LinearlySeparable(200, 2);
  auto model = LogisticRegression::Train(train, LogRegOptions());
  EXPECT_GT(model.Accuracy(test), 0.93);
}

TEST(LogisticRegressionTest, OutputsAreProbabilities) {
  auto model =
      LogisticRegression::Train(LinearlySeparable(100, 3), LogRegOptions());
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    const double p = model.Predict({rng.Uniform(-2, 2), rng.Uniform(-2, 2)});
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(LogisticRegressionTest, ConfidenceGrowsWithMargin) {
  auto model =
      LogisticRegression::Train(LinearlySeparable(400, 5), LogRegOptions());
  EXPECT_GT(model.Predict({1.0, 1.0}), model.Predict({0.1, 0.1}));
  EXPECT_LT(model.Predict({-1.0, -1.0}), model.Predict({-0.1, -0.1}));
}

TEST(LogisticRegressionTest, EmptyTrainingIsNeutral) {
  auto model = LogisticRegression::Train({}, LogRegOptions());
  EXPECT_EQ(model.Predict({}), 0.5);
}

TEST(LogisticRegressionTest, DeterministicTraining) {
  auto data = LinearlySeparable(100, 6);
  auto a = LogisticRegression::Train(data, LogRegOptions());
  auto b = LogisticRegression::Train(data, LogRegOptions());
  EXPECT_EQ(a.weights(), b.weights());
  EXPECT_EQ(a.bias(), b.bias());
}

// -------------------------------------------------------------- KMeans.

TEST(KMeansTest, SeparatesTwoBlobs) {
  Rng rng(7);
  std::vector<embedding::Vec> points;
  for (int i = 0; i < 50; ++i) {
    points.push_back({static_cast<float>(rng.Gaussian(0.0, 0.1)),
                      static_cast<float>(rng.Gaussian(0.0, 0.1))});
  }
  for (int i = 0; i < 50; ++i) {
    points.push_back({static_cast<float>(rng.Gaussian(5.0, 0.1)),
                      static_cast<float>(rng.Gaussian(5.0, 0.1))});
  }
  auto result = KMeans(points, 2);
  ASSERT_EQ(result.centroids.size(), 2u);
  // All points of each blob share an assignment.
  for (int i = 1; i < 50; ++i) {
    EXPECT_EQ(result.assignment[i], result.assignment[0]);
  }
  for (int i = 51; i < 100; ++i) {
    EXPECT_EQ(result.assignment[i], result.assignment[50]);
  }
  EXPECT_NE(result.assignment[0], result.assignment[50]);
}

TEST(KMeansTest, MedoidsAreValidIndices) {
  Rng rng(9);
  std::vector<embedding::Vec> points;
  for (int i = 0; i < 30; ++i) {
    points.push_back({static_cast<float>(rng.Uniform()),
                      static_cast<float>(rng.Uniform())});
  }
  auto result = KMeans(points, 4);
  for (int32_t medoid : result.medoids) {
    ASSERT_GE(medoid, 0);
    ASSERT_LT(medoid, 30);
  }
}

TEST(KMeansTest, KLargerThanPoints) {
  std::vector<embedding::Vec> points = {{0.0f}, {1.0f}};
  auto result = KMeans(points, 10);
  EXPECT_LE(result.centroids.size(), 2u);
}

TEST(KMeansTest, EmptyInput) {
  auto result = KMeans({}, 3);
  EXPECT_TRUE(result.centroids.empty());
}

TEST(KMeansTest, InertiaIsSumOfSquaredDistances) {
  std::vector<embedding::Vec> points = {{0.0f}, {0.2f}, {10.0f}, {10.2f}};
  auto result = KMeans(points, 2);
  EXPECT_NEAR(result.inertia, 0.02 * 2, 1e-6);
}

// ---------------------------------------------------------- NaiveBayes.

TEST(NaiveBayesTest, ClassifiesByTokenEvidence) {
  std::vector<TextExample> train = {
      {{"clean", "room"}, 0},     {{"spotless", "room"}, 0},
      {{"tidy", "sheets"}, 0},    {{"rude", "staff"}, 1},
      {{"friendly", "staff"}, 1}, {{"helpful", "reception"}, 1},
  };
  auto model = NaiveBayesClassifier::Train(train, 2);
  EXPECT_EQ(model.Classify({"clean", "sheets"}), 0);
  EXPECT_EQ(model.Classify({"rude", "reception"}), 1);
  EXPECT_EQ(model.Accuracy(train), 1.0);
}

TEST(NaiveBayesTest, UnknownTokensFallBackToPrior) {
  std::vector<TextExample> train = {
      {{"a"}, 0}, {{"a"}, 0}, {{"a"}, 0}, {{"b"}, 1},
  };
  auto model = NaiveBayesClassifier::Train(train, 2);
  // Class 0 has a 3x prior.
  EXPECT_EQ(model.Classify({"zzz"}), 0);
}

TEST(NaiveBayesTest, ScoresHaveOneEntryPerLabel) {
  std::vector<TextExample> train = {{{"x"}, 0}, {{"y"}, 1}, {{"z"}, 2}};
  auto model = NaiveBayesClassifier::Train(train, 3);
  EXPECT_EQ(model.Scores({"x"}).size(), 3u);
}

TEST(NaiveBayesTest, SmoothingHandlesUnseenTokenPerClass) {
  std::vector<TextExample> train = {{{"clean"}, 0}, {{"dirty"}, 1}};
  auto model = NaiveBayesClassifier::Train(train, 2);
  // "clean dirty" has evidence for both; must not crash and must return a
  // valid label.
  const int label = model.Classify({"clean", "dirty", "unknown"});
  EXPECT_TRUE(label == 0 || label == 1);
}

// ---------------------------------------------------- PerceptronTagger.

// Toy tagging task: words "red"/"blue" are tag 1, digits are tag 2,
// everything else tag 0 — with a transition quirk: tag 2 always follows
// tag 1 in the training data.
std::vector<TaggedSequence> ToyTaggingData(int n, uint64_t seed) {
  Rng rng(seed);
  const std::vector<std::string> fillers = {"the", "a", "walk", "house"};
  std::vector<TaggedSequence> data;
  for (int i = 0; i < n; ++i) {
    TaggedSequence seq;
    const int len = 3 + static_cast<int>(rng.Below(5));
    for (int j = 0; j < len; ++j) {
      std::string word;
      int tag;
      const double r = rng.Uniform();
      if (r < 0.3) {
        word = rng.Bernoulli(0.5) ? "red" : "blue";
        tag = 1;
      } else if (r < 0.5) {
        word = std::to_string(rng.Below(10));
        tag = 2;
      } else {
        word = fillers[rng.Below(fillers.size())];
        tag = 0;
      }
      seq.features.push_back({"w=" + word});
      seq.tags.push_back(tag);
    }
    data.push_back(std::move(seq));
  }
  return data;
}

TEST(PerceptronTaggerTest, LearnsEmissionPatterns) {
  auto train = ToyTaggingData(300, 1);
  auto test = ToyTaggingData(100, 2);
  auto tagger = PerceptronTagger::Train(train, 3, {});
  EXPECT_GT(tagger.TokenAccuracy(test), 0.95);
}

TEST(PerceptronTaggerTest, PredictEmptySequence) {
  auto tagger = PerceptronTagger::Train(ToyTaggingData(10, 3), 3, {});
  EXPECT_TRUE(tagger.Predict({}).empty());
}

TEST(PerceptronTaggerTest, PredictLengthMatchesInput) {
  auto tagger = PerceptronTagger::Train(ToyTaggingData(50, 4), 3, {});
  std::vector<std::vector<std::string>> features = {
      {"w=red"}, {"w=the"}, {"w=7"}};
  EXPECT_EQ(tagger.Predict(features).size(), 3u);
}

TEST(PerceptronTaggerTest, DeterministicTraining) {
  auto data = ToyTaggingData(100, 5);
  auto a = PerceptronTagger::Train(data, 3, {});
  auto b = PerceptronTagger::Train(data, 3, {});
  std::vector<std::vector<std::string>> features = {
      {"w=red"}, {"w=3"}, {"w=walk"}, {"w=blue"}};
  EXPECT_EQ(a.Predict(features), b.Predict(features));
}

TEST(PerceptronTaggerTest, TransitionsHelpAmbiguousTokens) {
  // "x" is ambiguous: tag 1 after "start1", tag 2 after "start2". Only
  // the transition structure disambiguates.
  std::vector<TaggedSequence> data;
  for (int i = 0; i < 60; ++i) {
    TaggedSequence a;
    a.features = {{"w=start1"}, {"w=x"}};
    a.tags = {1, 1};
    data.push_back(a);
    TaggedSequence b;
    b.features = {{"w=start2"}, {"w=x"}};
    b.tags = {2, 2};
    data.push_back(b);
  }
  auto tagger = PerceptronTagger::Train(data, 3, {});
  EXPECT_EQ(tagger.Predict({{"w=start1"}, {"w=x"}}),
            (std::vector<int>{1, 1}));
  EXPECT_EQ(tagger.Predict({{"w=start2"}, {"w=x"}}),
            (std::vector<int>{2, 2}));
}

}  // namespace
}  // namespace opinedb::ml
