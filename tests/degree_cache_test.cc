// Unit coverage for DegreeCache's Threshold-Algorithm path: property-style
// agreement between TopKConjunction and TopKConjunctionFullScan on
// randomized predicate subsets (seeded RNG), plus TaStats access-count
// sanity and cache hit/miss accounting.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/degree_cache.h"
#include "datagen/domain_spec.h"
#include "eval/experiment.h"

namespace opinedb {
namespace {

class DegreeCacheTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eval::BuildOptions options;
    options.generator.num_entities = 30;
    options.generator.min_reviews_per_entity = 10;
    options.generator.max_reviews_per_entity = 20;
    options.generator.seed = 21;
    options.seed = 21;
    options.extractor_training_sentences = 400;
    options.predicate_pool_size = 60;
    options.membership_training_tuples = 500;
    artifacts_ = new eval::DomainArtifacts(
        eval::BuildArtifacts(datagen::HotelDomain(), options));
  }

  static void TearDownTestSuite() {
    delete artifacts_;
    artifacts_ = nullptr;
  }

  const core::OpineDb& db() const { return *artifacts_->db; }

  /// The predicate universe: every marker plus a slice of the generated
  /// query-predicate pool (free-text predicates exercise the fallback
  /// and word2vec interpretation paths).
  std::vector<std::string> PredicateUniverse() const {
    std::vector<std::string> universe;
    for (const auto& attribute : db().schema().attributes) {
      for (const auto& marker : attribute.summary_type.markers) {
        universe.push_back(marker);
      }
    }
    const auto& pool = artifacts_->pool;
    for (size_t i = 0; i < pool.size() && i < 20; ++i) {
      universe.push_back(pool[i].text);
    }
    std::sort(universe.begin(), universe.end());
    universe.erase(std::unique(universe.begin(), universe.end()),
                   universe.end());
    return universe;
  }

  static eval::DomainArtifacts* artifacts_;
};

eval::DomainArtifacts* DegreeCacheTest::artifacts_ = nullptr;

TEST_F(DegreeCacheTest, TopKAgreesWithFullScanOnRandomizedPredicates) {
  core::DegreeCache cache(&db());
  const auto universe = PredicateUniverse();
  ASSERT_GE(universe.size(), 4u);
  Rng rng(20260806);
  constexpr int kTrials = 40;
  for (int trial = 0; trial < kTrials; ++trial) {
    const size_t width = 1 + rng.Below(4);  // 1..4 predicates.
    std::vector<std::string> predicates;
    for (size_t index : rng.SampleIndices(universe.size(), width)) {
      predicates.push_back(universe[index]);
    }
    const size_t k = 1 + rng.Below(db().corpus().num_entities());
    auto ta = cache.TopKConjunction(predicates, k);
    auto scan = cache.TopKConjunctionFullScan(predicates, k);
    ASSERT_EQ(ta.size(), scan.size()) << "trial " << trial;
    for (size_t i = 0; i < ta.size(); ++i) {
      EXPECT_EQ(ta[i].entity, scan[i].entity)
          << "trial " << trial << " rank " << i;
      EXPECT_EQ(ta[i].score, scan[i].score)
          << "trial " << trial << " rank " << i;
    }
    // Scores are sorted best-first with ids breaking ties.
    for (size_t i = 1; i < ta.size(); ++i) {
      EXPECT_GE(ta[i - 1].score, ta[i].score);
      if (ta[i - 1].score == ta[i].score) {
        EXPECT_LT(ta[i - 1].entity, ta[i].entity);
      }
    }
  }
}

TEST_F(DegreeCacheTest, TaStatsAccessCountsAreSane) {
  core::DegreeCache cache(&db());
  const auto universe = PredicateUniverse();
  ASSERT_GE(universe.size(), 3u);
  const std::vector<std::string> predicates = {universe[0], universe[1],
                                               universe[2]};
  const size_t n = db().corpus().num_entities();
  const size_t k = 5;

  fuzzy::TaStats stats;
  auto top = cache.TopKConjunction(predicates, k, &stats);
  EXPECT_LE(top.size(), k);
  EXPECT_GT(stats.rounds, 0u);
  EXPECT_GT(stats.sorted_accesses, 0u);
  // One round pops at most one entry per list; sorted accesses can never
  // exceed the total volume of the lists.
  EXPECT_LE(stats.rounds, n);
  EXPECT_LE(stats.sorted_accesses, predicates.size() * n);
  // Each sorted access triggers at most (lists - 1) random accesses to
  // complete the aggregate for the popped entity.
  EXPECT_LE(stats.random_accesses,
            stats.sorted_accesses * (predicates.size() - 1));

  // A second run over the same cached lists is deterministic.
  fuzzy::TaStats again;
  auto top2 = cache.TopKConjunction(predicates, k, &again);
  EXPECT_EQ(again.rounds, stats.rounds);
  EXPECT_EQ(again.sorted_accesses, stats.sorted_accesses);
  EXPECT_EQ(again.random_accesses, stats.random_accesses);
  ASSERT_EQ(top.size(), top2.size());
  for (size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(top[i].entity, top2[i].entity);
    EXPECT_EQ(top[i].score, top2[i].score);
  }
}

TEST_F(DegreeCacheTest, HitMissCountersTrackTraffic) {
  core::DegreeCache cache(&db());
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  cache.Degrees("clean room");
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
  cache.Degrees("clean room");
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  // Clear drops the lists but keeps the monotone counters.
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  cache.Degrees("clean room");
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST_F(DegreeCacheTest, StableReferencesAcrossLaterInserts) {
  core::DegreeCache cache(&db());
  const auto& first = cache.Degrees("clean room");
  const std::vector<double> snapshot = first;
  // Pile on enough inserts to force rehashes inside the shards.
  for (const auto& predicate : PredicateUniverse()) {
    cache.Degrees(predicate);
  }
  ASSERT_EQ(first.size(), snapshot.size());
  for (size_t e = 0; e < snapshot.size(); ++e) {
    EXPECT_EQ(first[e], snapshot[e]);
  }
}

}  // namespace
}  // namespace opinedb
