// Replication battery for WAL shipping (src/repl/, docs/REPLICATION.md).
//
// The load-bearing contract: a follower pulling the primary's WAL is
// *bit-identical* to the primary at every acknowledged offset — same
// query answers (exact doubles), same WAL segment bytes on disk, same
// snapshot generations. On top of that:
//
//  1. the wire protocol: verified-prefix framing, record-boundary
//     offsets, 409 retired-base → snapshot catch-up, 416 bad offset;
//  2. checkpoint lockstep: the follower rotates generations exactly
//     when the primary does (ReplicaCheckpoint), so segment names and
//     fingerprint seeds never drift;
//  3. the failure drills: a mid-batch crash loses nothing and doubles
//     nothing, a fingerprint mismatch refuses the WHOLE batch (typed
//     DataLoss), a partition degrades reads and heals without
//     operator help, a restarted follower resumes from its own WAL;
//  4. bounded staleness: /query's max_staleness_ms answers degraded
//     (or 412 under strict) once the lag probe exceeds the budget;
//  5. failover: POST /admin/promote turns the follower into a primary
//     that answers the pre-failover query set byte-for-byte and
//     accepts writes.
//
// Fault-site tests self-skip when OPINEDB_FAULT_INJECTION is off.
// Tests single-step the follower with SyncOnce() for determinism; the
// background pull loop is exercised by the partition drill.
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/backoff.h"
#include "common/fault.h"
#include "common/string_util.h"
#include "core/engine.h"
#include "core/result_json.h"
#include "datagen/domain_spec.h"
#include "eval/experiment.h"
#include "repl/client.h"
#include "repl/protocol.h"
#include "repl/source.h"
#include "server/http_client.h"
#include "server/json.h"
#include "server/server.h"
#include "storage/wal.h"

namespace opinedb {
namespace {

namespace fs = std::filesystem;

std::string JsonString(std::string_view s) {
  std::string out;
  JsonEscapeAppend(s, &out);
  return out;
}

/// One small, fully deterministic hotel-domain engine; every call
/// yields bit-identical models, corpora and summaries — which is what
/// lets a primary/follower pair start from identical state without an
/// initial snapshot transfer.
eval::DomainArtifacts BuildEngine() {
  eval::BuildOptions options;
  options.generator.num_entities = 12;
  options.generator.min_reviews_per_entity = 5;
  options.generator.max_reviews_per_entity = 8;
  options.generator.seed = 83;
  options.seed = 83;
  options.extractor_training_sentences = 250;
  options.predicate_pool_size = 12;
  options.membership_training_tuples = 250;
  return eval::BuildArtifacts(datagen::HotelDomain(), options);
}

std::vector<text::Review> MakeBatch(uint64_t seed, int size,
                                    int32_t num_entities) {
  static const std::vector<std::string> kBodies = {
      "the room was very clean and the staff was friendly",
      "terrible noisy location but the bed was comfortable",
      "excellent breakfast and a spotless bathroom",
      "rude reception and the wifi never worked",
  };
  std::mt19937_64 rng(seed);
  std::vector<text::Review> batch;
  for (int i = 0; i < size; ++i) {
    text::Review review;
    review.entity = static_cast<int32_t>(rng() % num_entities);
    review.reviewer = 700 + static_cast<int32_t>(rng() % 9);
    review.date = 20260800 + static_cast<int32_t>(seed % 30);
    review.body = kBodies[rng() % kBodies.size()];
    batch.push_back(std::move(review));
  }
  return batch;
}

std::string ReadFileOrDie(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

class ReplTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::DisarmAll();
    root_ = fs::path(::testing::TempDir()) /
            ("repl_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()));
    std::error_code ec;
    fs::remove_all(root_, ec);
    fs::create_directories(root_ / "primary");
    fs::create_directories(root_ / "follower");
  }

  void TearDown() override {
    fault::DisarmAll();
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  std::string primary_dir() const { return (root_ / "primary").string(); }
  std::string follower_dir() const { return (root_ / "follower").string(); }

  /// A live primary (WAL + serving the replication routes) plus a
  /// follower client pointed at it. Members declared in dependency
  /// order so destruction tears down client → server → source →
  /// engines.
  struct Cluster {
    eval::DomainArtifacts primary;
    eval::DomainArtifacts follower;
    std::unique_ptr<repl::ReplicationSource> source;
    std::unique_ptr<server::QueryServer> server;
    std::unique_ptr<repl::ReplicationClient> client;

    core::OpineDb& primary_db() { return *primary.db; }
    core::OpineDb& follower_db() { return *follower.db; }
  };

  Cluster MakeCluster(repl::ReplicationSourceOptions source_options = {},
                      bool initialize_client = true) {
    Cluster cluster{BuildEngine(), BuildEngine(), nullptr, nullptr, nullptr};
    EXPECT_TRUE(cluster.primary_db().EnableWal(primary_dir()).ok());
    cluster.source = std::make_unique<repl::ReplicationSource>(
        cluster.primary.db.get(), source_options);
    server::QueryServerOptions server_options;
    server_options.httpd.num_workers = 2;
    server_options.httpd.queue_capacity = 16;
    server_options.replication_source = cluster.source.get();
    cluster.server = std::make_unique<server::QueryServer>(
        cluster.primary.db.get(), server_options);
    const Status started = cluster.server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    repl::ReplicationClientOptions client_options;
    client_options.primary_port = cluster.server->port();
    cluster.client = std::make_unique<repl::ReplicationClient>(
        cluster.follower.db.get(), follower_dir(), client_options);
    if (initialize_client) {
      const Status initialized = cluster.client->Initialize();
      EXPECT_TRUE(initialized.ok()) << initialized.ToString();
    }
    return cluster;
  }

  /// Single-steps SyncOnce until the follower reports caught up.
  static void Pump(repl::ReplicationClient& client, int max_cycles = 200) {
    for (int i = 0; i < max_cycles; ++i) {
      auto caught_up = client.SyncOnce();
      ASSERT_TRUE(caught_up.ok()) << caught_up.status().ToString();
      if (*caught_up) return;
    }
    FAIL() << "follower not caught up after " << max_cycles << " cycles";
  }

  static std::vector<std::string> PoolQueries(
      const eval::DomainArtifacts& artifacts, size_t count) {
    std::vector<std::string> queries;
    const std::string table = artifacts.db->schema().objective_table;
    for (size_t i = 0; i < count && i < artifacts.pool.size(); ++i) {
      queries.push_back("select * from " + table + " where \"" +
                        artifacts.pool[i].text + "\" limit 10");
    }
    return queries;
  }

  /// The strongest equivalence available: the rendered JSON document
  /// (exact %.17g doubles included) must match byte for byte.
  static void ExpectEnginesAgree(core::OpineDb& primary,
                                 core::OpineDb& follower,
                                 const std::vector<std::string>& queries,
                                 const std::string& context) {
    for (const std::string& sql : queries) {
      auto want = primary.Execute(sql);
      auto got = follower.Execute(sql);
      ASSERT_TRUE(want.ok()) << context << ": " << want.status().ToString();
      ASSERT_TRUE(got.ok()) << context << ": " << got.status().ToString();
      EXPECT_EQ(core::ResultToJson(*want), core::ResultToJson(*got))
          << context << ": " << sql;
    }
  }

  fs::path root_;
};

// ------------------------------------------------------------ Backoff.

TEST_F(ReplTest, BackoffIsDeterministicAndBounded) {
  BackoffOptions options;
  options.initial_delay_ms = 10.0;
  options.max_delay_ms = 500.0;
  options.multiplier = 2.0;
  options.jitter = 0.5;
  ExponentialBackoff a(options, 7);
  ExponentialBackoff b(options, 7);
  double un_jittered = options.initial_delay_ms;
  for (int i = 0; i < 12; ++i) {
    const double da = a.NextDelayMs();
    const double db = b.NextDelayMs();
    EXPECT_EQ(da, db) << "same seed must give bit-identical delays";
    EXPECT_GE(da, un_jittered * (1.0 - options.jitter) - 1e-9);
    EXPECT_LE(da, un_jittered + 1e-9);
    un_jittered = std::min(un_jittered * options.multiplier,
                           options.max_delay_ms);
  }
  EXPECT_EQ(a.failures(), 12u);
  a.Reset();
  EXPECT_EQ(a.failures(), 0u);
  // Reset restarts the growth schedule but NOT the Rng stream.
  const double after_reset = a.NextDelayMs();
  EXPECT_GE(after_reset, options.initial_delay_ms * (1.0 - options.jitter) -
                             1e-9);
  EXPECT_LE(after_reset, options.initial_delay_ms + 1e-9);
}

TEST_F(ReplTest, FingerprintSeedsAndChainsDistinguishStreams) {
  EXPECT_NE(repl::SeedFingerprint(0), repl::SeedFingerprint(1))
      << "different segments must not share a chain prefix";
  const uint32_t seed = repl::SeedFingerprint(3);
  const uint32_t ab = repl::ChainFingerprint(
      repl::ChainFingerprint(seed, "alpha"), "beta");
  const uint32_t ba = repl::ChainFingerprint(
      repl::ChainFingerprint(seed, "beta"), "alpha");
  EXPECT_NE(ab, ba) << "the chain must be order-sensitive";
  EXPECT_EQ(ab, repl::ChainFingerprint(
                    repl::ChainFingerprint(repl::SeedFingerprint(3), "alpha"),
                    "beta"))
      << "the chain must be a pure function of (seed, payload sequence)";
}

// ------------------------------------------------- Steady-state sync.

TEST_F(ReplTest, SteadyStateShippingIsBitIdentical) {
  Cluster cluster = MakeCluster();
  const auto queries = PoolQueries(cluster.primary, 6);
  const int32_t entities =
      static_cast<int32_t>(cluster.primary_db().corpus().num_entities());

  for (uint64_t round = 0; round < 5; ++round) {
    ASSERT_TRUE(cluster.primary_db()
                    .AppendReviews(MakeBatch(
                        round, 1 + static_cast<int>(round % 3), entities))
                    .ok());
    Pump(*cluster.client);
  }

  EXPECT_EQ(cluster.primary_db().corpus().num_reviews(),
            cluster.follower_db().corpus().num_reviews());
  ExpectEnginesAgree(cluster.primary_db(), cluster.follower_db(), queries,
                     "steady state");
  // The follower journals every applied record through the same framing
  // the primary used, so the two WAL segments are byte-identical files.
  const std::string segment = storage::WalFileName(0);
  EXPECT_EQ(ReadFileOrDie(fs::path(primary_dir()) / segment),
            ReadFileOrDie(fs::path(follower_dir()) / segment))
      << "follower WAL must mirror the primary's segment bytes";
  EXPECT_EQ(cluster.client->offset(),
            cluster.primary_db().wal_acknowledged_bytes() -
                storage::kWalHeaderSize);
  EXPECT_EQ(cluster.client->divergence_count(), 0u);
  EXPECT_EQ(cluster.client->catchup_count(), 0u);
}

TEST_F(ReplTest, CheckpointLockstepRotatesGenerations) {
  Cluster cluster = MakeCluster();
  const auto queries = PoolQueries(cluster.primary, 4);
  const int32_t entities =
      static_cast<int32_t>(cluster.primary_db().corpus().num_entities());

  ASSERT_TRUE(
      cluster.primary_db().AppendReviews(MakeBatch(1, 3, entities)).ok());
  Pump(*cluster.client);  // The fetch pins generation 0 on the source.

  // Checkpoint retires the segment logically but keeps the pinned file
  // on disk, so the lagging follower drains it and rotates in lockstep.
  ASSERT_TRUE(cluster.primary_db().Checkpoint().ok());
  ASSERT_TRUE(
      cluster.primary_db().AppendReviews(MakeBatch(2, 2, entities)).ok());
  EXPECT_EQ(cluster.primary_db().snapshot_generation(), 1u);

  Pump(*cluster.client);
  EXPECT_EQ(cluster.follower_db().snapshot_generation(), 1u)
      << "ReplicaCheckpoint must rotate exactly when the primary did";
  EXPECT_EQ(cluster.client->catchup_count(), 0u)
      << "a pinned segment is drained, not snapshot-copied";
  ExpectEnginesAgree(cluster.primary_db(), cluster.follower_db(), queries,
                     "post-checkpoint");
  const std::string segment = storage::WalFileName(1);
  EXPECT_EQ(ReadFileOrDie(fs::path(primary_dir()) / segment),
            ReadFileOrDie(fs::path(follower_dir()) / segment));
}

TEST_F(ReplTest, SnapshotCatchUpAfterRetiredSegment) {
  Cluster cluster = MakeCluster();
  const auto queries = PoolQueries(cluster.primary, 4);
  const int32_t entities =
      static_cast<int32_t>(cluster.primary_db().corpus().num_entities());
  const uint64_t base_reviews =
      cluster.follower_db().corpus().num_reviews();

  // The follower never fetches before the checkpoint, so nothing pins
  // generation 0 and the segment is really gone from disk.
  ASSERT_TRUE(
      cluster.primary_db().AppendReviews(MakeBatch(1, 4, entities)).ok());
  ASSERT_TRUE(cluster.primary_db().Checkpoint().ok());
  ASSERT_FALSE(
      fs::exists(fs::path(primary_dir()) / storage::WalFileName(0)))
      << "unpinned segment should be retired by the checkpoint";
  ASSERT_TRUE(
      cluster.primary_db().AppendReviews(MakeBatch(2, 2, entities)).ok());

  Pump(*cluster.client);
  EXPECT_EQ(cluster.client->catchup_count(), 1u)
      << "a retired base must trigger exactly one snapshot catch-up";
  EXPECT_EQ(cluster.follower_db().snapshot_generation(), 1u);
  // The snapshot is summaries-only (the corpus is re-derivable state,
  // not part of the container), so the batch that was folded away
  // never lands in the follower's corpus — but every record appended
  // AFTER the adopted generation still applies through the WAL.
  EXPECT_EQ(cluster.follower_db().corpus().num_reviews(),
            base_reviews + 2);
  // What MUST survive the fold + catch-up is the serving state: every
  // answer bit-identical to the primary's.
  ExpectEnginesAgree(cluster.primary_db(), cluster.follower_db(), queries,
                     "post-catch-up");
}

TEST_F(ReplTest, RestartedFollowerResumesAndConverges) {
  Cluster cluster = MakeCluster();
  const auto queries = PoolQueries(cluster.primary, 4);
  const int32_t entities =
      static_cast<int32_t>(cluster.primary_db().corpus().num_entities());

  ASSERT_TRUE(
      cluster.primary_db().AppendReviews(MakeBatch(1, 3, entities)).ok());
  Pump(*cluster.client);
  const uint64_t offset_before = cluster.client->offset();
  const uint32_t fingerprint_before = cluster.client->fingerprint();
  ASSERT_GT(offset_before, 0u);

  // "Crash" the follower: throw away the engine and the client, then
  // rebuild from the follower's own directory. Initialize replays the
  // local WAL tail and re-derives the exact stream position.
  cluster.client.reset();
  cluster.follower = BuildEngine();
  repl::ReplicationClientOptions client_options;
  client_options.primary_port = cluster.server->port();
  cluster.client = std::make_unique<repl::ReplicationClient>(
      cluster.follower.db.get(), follower_dir(), client_options);
  ASSERT_TRUE(cluster.client->Initialize().ok());
  EXPECT_EQ(cluster.client->offset(), offset_before)
      << "restart must resume at the acknowledged offset";
  EXPECT_EQ(cluster.client->fingerprint(), fingerprint_before)
      << "restart must re-derive the exact chained fingerprint";

  ASSERT_TRUE(
      cluster.primary_db().AppendReviews(MakeBatch(2, 2, entities)).ok());
  Pump(*cluster.client);
  ExpectEnginesAgree(cluster.primary_db(), cluster.follower_db(), queries,
                     "post-restart");
  const std::string segment = storage::WalFileName(0);
  EXPECT_EQ(ReadFileOrDie(fs::path(primary_dir()) / segment),
            ReadFileOrDie(fs::path(follower_dir()) / segment));
}

// ----------------------------------------------------- Failure drills.

TEST_F(ReplTest, MidApplyCrashLosesNothingAndDoublesNothing) {
  if (!fault::CompiledIn()) {
    GTEST_SKIP() << "fault injection compiled out (plain Release build)";
  }
  Cluster cluster = MakeCluster();
  const auto queries = PoolQueries(cluster.primary, 4);
  const int32_t entities =
      static_cast<int32_t>(cluster.primary_db().corpus().num_entities());

  // Three appended batches = three WAL records in one shipped batch.
  for (uint64_t round = 1; round <= 3; ++round) {
    ASSERT_TRUE(cluster.primary_db()
                    .AppendReviews(MakeBatch(round, 2, entities))
                    .ok());
  }

  // Crash between the first and second applies: record 1 stays
  // acknowledged (offset advanced), records 2-3 are re-fetched.
  fault::Arm("repl.apply", 2);
  auto crashed = cluster.client->SyncOnce();
  ASSERT_FALSE(crashed.ok());
  EXPECT_EQ(fault::HitCount("repl.apply"), 2u);
  const uint64_t offset_after_crash = cluster.client->offset();
  EXPECT_GT(offset_after_crash, 0u) << "the first apply was acknowledged";

  Pump(*cluster.client);
  EXPECT_EQ(cluster.primary_db().corpus().num_reviews(),
            cluster.follower_db().corpus().num_reviews())
      << "no record lost, no record applied twice";
  ExpectEnginesAgree(cluster.primary_db(), cluster.follower_db(), queries,
                     "post-crash");
  const std::string segment = storage::WalFileName(0);
  EXPECT_EQ(ReadFileOrDie(fs::path(primary_dir()) / segment),
            ReadFileOrDie(fs::path(follower_dir()) / segment));
}

TEST_F(ReplTest, DivergenceRefusesTheWholeBatch) {
  if (!fault::CompiledIn()) {
    GTEST_SKIP() << "fault injection compiled out (plain Release build)";
  }
  Cluster cluster = MakeCluster();
  const int32_t entities =
      static_cast<int32_t>(cluster.primary_db().corpus().num_entities());
  ASSERT_TRUE(
      cluster.primary_db().AppendReviews(MakeBatch(1, 3, entities)).ok());

  const uint64_t reviews_before =
      cluster.follower_db().corpus().num_reviews();
  fault::Arm("repl.checksum", 1);
  auto refused = cluster.client->SyncOnce();
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kDataLoss)
      << "divergence must surface as typed DataLoss";
  EXPECT_EQ(cluster.client->divergence_count(), 1u);
  EXPECT_EQ(cluster.follower_db().corpus().num_reviews(), reviews_before)
      << "NOTHING from a mismatched batch may be applied";
  EXPECT_EQ(cluster.client->offset(), 0u);

  // A transient corruption source heals: the next cycle re-fetches and
  // applies the identical batch cleanly.
  Pump(*cluster.client);
  EXPECT_EQ(cluster.primary_db().corpus().num_reviews(),
            cluster.follower_db().corpus().num_reviews());
}

TEST_F(ReplTest, PartitionDegradesThenHealsUnderThePullLoop) {
  if (!fault::CompiledIn()) {
    GTEST_SKIP() << "fault injection compiled out (plain Release build)";
  }
  repl::ReplicationSourceOptions source_options;
  Cluster cluster = MakeCluster(source_options);
  const int32_t entities =
      static_cast<int32_t>(cluster.primary_db().corpus().num_entities());
  Pump(*cluster.client);

  // Partition: every fetch degrades to Unavailable before any traffic.
  // Writes keep landing on the primary; the follower's lag grows.
  for (int i = 0; i < 3; ++i) {
    fault::Arm("repl.fetch", 1);
    auto cut = cluster.client->SyncOnce();
    EXPECT_FALSE(cut.ok());
    EXPECT_EQ(cut.status().code(), StatusCode::kUnavailable);
  }
  ASSERT_TRUE(
      cluster.primary_db().AppendReviews(MakeBatch(9, 3, entities)).ok());
  EXPECT_FALSE(cluster.client->caught_up());

  // Heal under the real background loop: Start() retries with backoff
  // and converges without operator help.
  ASSERT_TRUE(cluster.client->Start().ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!cluster.client->caught_up() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  cluster.client->Stop();
  EXPECT_TRUE(cluster.client->caught_up()) << "pull loop never converged";
  EXPECT_EQ(cluster.primary_db().corpus().num_reviews(),
            cluster.follower_db().corpus().num_reviews());
  EXPECT_LT(cluster.client->lag_ms(), 10000.0);
}

TEST_F(ReplTest, PromoteFaultFailsBeforeTheFlip) {
  if (!fault::CompiledIn()) {
    GTEST_SKIP() << "fault injection compiled out (plain Release build)";
  }
  Cluster cluster = MakeCluster();
  fault::Arm("repl.promote", 1);
  const Status failed = cluster.follower_db().Promote();
  EXPECT_FALSE(failed.ok());
  EXPECT_TRUE(cluster.follower_db().read_only())
      << "a failed promote must leave the node a follower";
  fault::DisarmAll();
  EXPECT_TRUE(cluster.follower_db().Promote().ok());
  EXPECT_FALSE(cluster.follower_db().read_only());
}

// ------------------------------------------------ Role enforcement.

TEST_F(ReplTest, FollowerRefusesWritesUntilPromoted) {
  Cluster cluster = MakeCluster();
  core::OpineDb& follower = cluster.follower_db();
  const int32_t entities =
      static_cast<int32_t>(follower.corpus().num_entities());

  const Status append = follower.AppendReviews(MakeBatch(1, 1, entities));
  EXPECT_EQ(append.code(), StatusCode::kFailedPrecondition)
      << "a follower must refuse direct writes: " << append.ToString();
  EXPECT_EQ(follower.Checkpoint().code(),
            StatusCode::kFailedPrecondition)
      << "operator checkpoints would break generation lockstep";

  ASSERT_TRUE(follower.Promote().ok());
  EXPECT_FALSE(follower.read_only());
  EXPECT_TRUE(follower.AppendReviews(MakeBatch(1, 1, entities)).ok())
      << "a promoted follower accepts writes (WAL replayed at enable)";
  EXPECT_EQ(follower.Promote().code(), StatusCode::kFailedPrecondition)
      << "promoting a primary is an operator mistake";
}

// -------------------------------------------------- Wire protocol.

TEST_F(ReplTest, WalFetchRejectsBadOffsetsAndRetiredBases) {
  Cluster cluster = MakeCluster();
  const int32_t entities =
      static_cast<int32_t>(cluster.primary_db().corpus().num_entities());
  ASSERT_TRUE(
      cluster.primary_db().AppendReviews(MakeBatch(1, 2, entities)).ok());

  server::HttpRequest request;
  request.method = "GET";
  request.path = repl::kWalRoute;

  request.query_params = {{"offset", "0"}};
  EXPECT_EQ(cluster.source->HandleWalFetch(request).status, 400)
      << "?base= is required";

  request.query_params = {{"base", "0"}, {"offset", "7"}};
  EXPECT_EQ(cluster.source->HandleWalFetch(request).status, 416)
      << "an offset off a record boundary must be refused";

  request.query_params = {{"base", "5"}, {"offset", "0"}};
  server::HttpResponse retired = cluster.source->HandleWalFetch(request);
  EXPECT_EQ(retired.status, 409);
  bool has_generation = false;
  for (const auto& [name, value] : retired.headers) {
    if (name == repl::kHeaderPrimaryGeneration) {
      has_generation = true;
      EXPECT_EQ(value, "0");
    }
  }
  EXPECT_TRUE(has_generation)
      << "409 must name the generation to catch up to";

  // A well-formed fetch ships verified frames with the full metadata.
  request.query_params = {{"base", "0"}, {"offset", "0"}};
  server::HttpResponse ok = cluster.source->HandleWalFetch(request);
  EXPECT_EQ(ok.status, 200);
  EXPECT_FALSE(ok.body.empty());
  std::vector<std::string> records;
  EXPECT_EQ(storage::DecodeWalRecords(ok.body, &records), ok.body.size())
      << "every shipped byte must re-verify";
  EXPECT_EQ(records.size(), 1u) << "one append = one WAL record";
}

// ------------------------------------------- Bounded staleness + ops.

TEST_F(ReplTest, BoundedStalenessDegradesOrAnswers412) {
  eval::DomainArtifacts artifacts = BuildEngine();
  double fake_lag_ms = 0.0;
  server::QueryServerOptions options;
  options.replication_lag_ms = [&fake_lag_ms] { return fake_lag_ms; };
  server::QueryServer server(artifacts.db.get(), options);

  const std::string table = artifacts.db->schema().objective_table;
  const std::string sql = "select * from " + table + " where \"" +
                          artifacts.pool[0].text + "\" limit 5";
  server::HttpRequest request;
  request.method = "POST";
  request.path = "/query";

  auto query = [&](const std::string& extra) {
    std::string body = "{\"sql\": " + JsonString(sql);
    if (!extra.empty()) body += ", " + extra;
    body += "}";
    request.body = body;
    return server.Handle(request);
  };

  // Fresh replica: the budget holds, the answer is full fidelity.
  fake_lag_ms = 10.0;
  server::HttpResponse fresh = query("\"max_staleness_ms\": 50");
  EXPECT_EQ(fresh.status, 200);
  EXPECT_NE(fresh.body.find("\"degraded\": false"), std::string::npos);

  // Stale replica, best-effort default: still answers, marked degraded.
  fake_lag_ms = 5000.0;
  server::HttpResponse stale = query("\"max_staleness_ms\": 50");
  EXPECT_EQ(stale.status, 200);
  EXPECT_NE(stale.body.find("\"degraded\": true"), std::string::npos)
      << stale.body;

  // Strict mode: over budget is a typed refusal.
  server::HttpResponse strict =
      query("\"max_staleness_ms\": 50, \"strict\": true");
  EXPECT_EQ(strict.status, 412) << strict.body;

  // No budget named: staleness is the client's choice, never imposed.
  server::HttpResponse unbounded = query("");
  EXPECT_EQ(unbounded.status, 200);
  EXPECT_NE(unbounded.body.find("\"degraded\": false"), std::string::npos);

  EXPECT_EQ(query("\"max_staleness_ms\": -1").status, 400);
}

TEST_F(ReplTest, HealthzReportsRoleWalStateAndLag) {
  eval::DomainArtifacts artifacts = BuildEngine();
  core::OpineDb& db = *artifacts.db;
  double fake_lag_ms = 12.5;
  server::QueryServerOptions options;
  options.replication_lag_ms = [&fake_lag_ms] { return fake_lag_ms; };
  server::QueryServer server(&db, options);

  server::HttpRequest request;
  request.method = "GET";
  request.path = "/healthz";

  server::HttpResponse plain = server.Handle(request);
  EXPECT_EQ(plain.status, 200);
  EXPECT_NE(plain.body.find("\"role\": \"primary\""), std::string::npos);
  EXPECT_NE(plain.body.find("\"wal\": \"off\""), std::string::npos);
  EXPECT_NE(plain.body.find("\"replication_lag_ms\": "), std::string::npos);

  ASSERT_TRUE(db.EnableWal(primary_dir()).ok());
  EXPECT_NE(server.Handle(request).body.find("\"wal\": \"on\""),
            std::string::npos);

  db.SetReadOnly(true);
  EXPECT_NE(server.Handle(request).body.find("\"role\": \"follower\""),
            std::string::npos);
  db.SetReadOnly(false);

  if (fault::CompiledIn()) {
    // A failed fsync breaks the journal; health must go degraded so
    // orchestration stops routing writes here before one fails.
    fault::Arm("storage.wal_fsync", 1);
    const int32_t entities =
        static_cast<int32_t>(db.corpus().num_entities());
    EXPECT_FALSE(db.AppendReviews(MakeBatch(1, 1, entities)).ok());
    server::HttpResponse broken = server.Handle(request);
    EXPECT_NE(broken.body.find("\"status\": \"degraded\""),
              std::string::npos)
        << broken.body;
    EXPECT_NE(broken.body.find("\"wal\": \"broken\""), std::string::npos);
  }
}

// ------------------------------------------------------ Failover drill.

TEST_F(ReplTest, FailoverServesPreFailoverAnswersByteForByte) {
  Cluster cluster = MakeCluster();
  const auto queries = PoolQueries(cluster.primary, 5);
  const int32_t entities =
      static_cast<int32_t>(cluster.primary_db().corpus().num_entities());

  for (uint64_t round = 1; round <= 3; ++round) {
    ASSERT_TRUE(cluster.primary_db()
                    .AppendReviews(MakeBatch(round, 2, entities))
                    .ok());
  }
  Pump(*cluster.client);

  // The answers every acknowledged write fed into, rendered exactly as
  // the server renders them — captured BEFORE the primary goes away.
  std::vector<std::string> pre_failover;
  for (const std::string& sql : queries) {
    auto result = cluster.primary_db().Execute(sql);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    pre_failover.push_back(core::ResultToJson(*result));
  }

  // The primary dies; the follower's front door comes up with the
  // promote hook and the (now unbounded) staleness probe.
  cluster.server->Stop();
  core::OpineDb* follower = cluster.follower.db.get();
  repl::ReplicationClient* client = cluster.client.get();
  server::QueryServerOptions follower_options;
  follower_options.httpd.num_workers = 2;
  follower_options.promote = [follower] { return follower->Promote(); };
  follower_options.replication_lag_ms = [client] {
    return client->lag_ms();
  };
  server::QueryServer follower_server(follower, follower_options);
  ASSERT_TRUE(follower_server.Start().ok());

  server::HttpClient http;
  ASSERT_TRUE(
      http.Connect("127.0.0.1", follower_server.port()).ok());

  // Pre-promote, writes are refused at the front door.
  auto refused = http.Post(
      "/reviews",
      "{\"reviews\": [{\"entity\": 0, \"reviewer\": 901, \"date\": "
      "20260808, \"body\": \"the room was very clean\"}]}");
  ASSERT_TRUE(refused.ok()) << refused.status().ToString();
  EXPECT_EQ(refused->status, 400) << refused->body;

  auto promoted = http.Post("/admin/promote", "{}");
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  EXPECT_EQ(promoted->status, 200) << promoted->body;
  EXPECT_NE(promoted->body.find("\"role\": \"primary\""),
            std::string::npos);

  // Every pre-failover answer, byte for byte, from the new primary.
  for (size_t i = 0; i < queries.size(); ++i) {
    auto response =
        http.Post("/query", "{\"sql\": " + JsonString(queries[i]) + "}");
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response->status, 200) << response->body;
    EXPECT_EQ(response->body, pre_failover[i])
        << "failover must not lose or perturb an acknowledged write: "
        << queries[i];
  }

  // And the new primary accepts writes.
  auto accepted = http.Post(
      "/reviews",
      "{\"reviews\": [{\"entity\": 0, \"reviewer\": 901, \"date\": "
      "20260808, \"body\": \"the room was very clean\"}]}");
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  EXPECT_EQ(accepted->status, 200) << accepted->body;
  follower_server.Stop();
}

// -------------------------------------------------- Segment pinning.

TEST_F(ReplTest, PinnedSegmentSurvivesCheckpointUntilReleased) {
  eval::DomainArtifacts artifacts = BuildEngine();
  core::OpineDb& db = *artifacts.db;
  ASSERT_TRUE(db.EnableWal(primary_dir()).ok());
  const int32_t entities = static_cast<int32_t>(db.corpus().num_entities());
  ASSERT_TRUE(db.AppendReviews(MakeBatch(1, 2, entities)).ok());

  db.generation_pins()->Pin(0);
  ASSERT_TRUE(db.Checkpoint().ok());
  EXPECT_TRUE(fs::exists(fs::path(primary_dir()) / storage::WalFileName(0)))
      << "a pinned segment must survive the checkpoint that retires it";

  db.generation_pins()->Unpin(0);
  ASSERT_TRUE(db.AppendReviews(MakeBatch(2, 1, entities)).ok());
  ASSERT_TRUE(db.Checkpoint().ok());
  EXPECT_FALSE(fs::exists(fs::path(primary_dir()) / storage::WalFileName(0)))
      << "once released, the next checkpoint retires it normally";
}

}  // namespace
}  // namespace opinedb
