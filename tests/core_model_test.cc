#include <gtest/gtest.h>

#include "core/marker_induction.h"
#include "core/marker_summary.h"
#include "core/query.h"
#include "core/schema.h"

namespace opinedb::core {
namespace {

// -------------------------------------------------------- MarkerSummary.

MarkerSummaryType CleanlinessType() {
  MarkerSummaryType type;
  type.name = "room_cleanliness";
  type.markers = {"very clean", "average", "dirty", "very dirty"};
  type.kind = SummaryKind::kLinearlyOrdered;
  return type;
}

TEST(MarkerSummaryTypeTest, MarkerIndex) {
  auto type = CleanlinessType();
  EXPECT_EQ(type.MarkerIndex("average"), 1);
  EXPECT_EQ(type.MarkerIndex("missing"), -1);
  EXPECT_EQ(type.num_markers(), 4u);
}

TEST(MarkerSummaryTest, AddPhraseOneHot) {
  auto type = CleanlinessType();
  MarkerSummary summary(&type, 2);
  summary.AddPhrase({1.0, 0.0, 0.0, 0.0}, 0.8, {1.0f, 0.0f}, 7);
  summary.AddPhrase({1.0, 0.0, 0.0, 0.0}, 0.6, {0.0f, 1.0f}, 8);
  summary.AddPhrase({0.0, 0.0, 1.0, 0.0}, -0.7, {0.5f, 0.5f}, 9);
  EXPECT_DOUBLE_EQ(summary.count(0), 2.0);
  EXPECT_DOUBLE_EQ(summary.count(2), 1.0);
  EXPECT_DOUBLE_EQ(summary.total_count(), 3.0);
  EXPECT_NEAR(summary.cell(0).mean_sentiment, 0.7, 1e-12);
  EXPECT_FLOAT_EQ(summary.cell(0).centroid[0], 0.5f);
  EXPECT_EQ(summary.DominantMarker(), 0);
  ASSERT_EQ(summary.cell(0).provenance.size(), 2u);
  EXPECT_EQ(summary.cell(0).provenance[0], 7);
}

TEST(MarkerSummaryTest, FractionalContribution) {
  auto type = CleanlinessType();
  MarkerSummary summary(&type, 1);
  summary.AddPhrase({0.5, 0.5, 0.0, 0.0}, 0.4, {1.0f}, 1);
  EXPECT_DOUBLE_EQ(summary.count(0), 0.5);
  EXPECT_DOUBLE_EQ(summary.count(1), 0.5);
  EXPECT_DOUBLE_EQ(summary.total_count(), 1.0);
}

TEST(MarkerSummaryTest, UnmatchedTracked) {
  auto type = CleanlinessType();
  MarkerSummary summary(&type, 1);
  summary.AddUnmatched();
  summary.AddUnmatched();
  EXPECT_DOUBLE_EQ(summary.unmatched_count(), 2.0);
  EXPECT_EQ(summary.DominantMarker(), -1);
}

TEST(MarkerSummaryTest, ToStringListsMarkers) {
  auto type = CleanlinessType();
  MarkerSummary summary(&type, 1);
  summary.AddPhrase({1, 0, 0, 0}, 0.5, {1.0f}, 0);
  const std::string s = summary.ToString();
  EXPECT_NE(s.find("very clean: 1.0"), std::string::npos);
}

// --------------------------------------------------------------- Schema.

TEST(SchemaTest, AttributeIndex) {
  SubjectiveSchema schema;
  schema.attributes.resize(2);
  schema.attributes[0].name = "a";
  schema.attributes[1].name = "b";
  EXPECT_EQ(schema.AttributeIndex("b"), 1);
  EXPECT_EQ(schema.AttributeIndex("c"), -1);
}

// ----------------------------------------------------- Marker induction.

TEST(MarkerInductionTest, LinearMarkersFollowSentimentOrder) {
  sentiment::Analyzer analyzer;
  std::vector<std::string> domain = {
      "spotless", "very clean", "clean", "tidy",  "average",
      "dusty",    "dirty",      "filthy", "grimy", "stained"};
  auto type = InduceLinearMarkers("cleanliness", domain, 4, analyzer);
  ASSERT_EQ(type.markers.size(), 4u);
  EXPECT_EQ(type.kind, SummaryKind::kLinearlyOrdered);
  // Sentiment must decrease along the scale.
  for (size_t i = 0; i + 1 < type.markers.size(); ++i) {
    EXPECT_GE(analyzer.ScorePhrase(type.markers[i]),
              analyzer.ScorePhrase(type.markers[i + 1]));
  }
}

TEST(MarkerInductionTest, LinearMarkersAreDistinct) {
  sentiment::Analyzer analyzer;
  std::vector<std::string> domain = {"clean", "clean", "clean", "dirty"};
  auto type = InduceLinearMarkers("x", domain, 3, analyzer);
  for (size_t i = 0; i < type.markers.size(); ++i) {
    for (size_t j = i + 1; j < type.markers.size(); ++j) {
      EXPECT_NE(type.markers[i], type.markers[j]);
    }
  }
}

TEST(MarkerInductionTest, EmptyDomainYieldsNoMarkers) {
  sentiment::Analyzer analyzer;
  auto type = InduceLinearMarkers("x", {}, 4, analyzer);
  EXPECT_TRUE(type.markers.empty());
}

// ------------------------------------------------------------ SQL parse.

TEST(ParseSqlTest, SimpleSubjectiveQuery) {
  auto result = ParseSubjectiveSql(
      "select * from Hotels where price_pn < 150 and "
      "\"has really clean rooms\" and \"is a romantic getaway\"");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& query = *result;
  EXPECT_EQ(query.table, "Hotels");
  ASSERT_EQ(query.conditions.size(), 3u);
  EXPECT_EQ(query.conditions[0].kind, Condition::Kind::kObjective);
  EXPECT_EQ(query.conditions[0].objective.column, "price_pn");
  EXPECT_EQ(query.conditions[1].kind, Condition::Kind::kSubjective);
  EXPECT_EQ(query.conditions[1].subjective, "has really clean rooms");
  ASSERT_NE(query.where, nullptr);
  EXPECT_EQ(query.where->kind(), fuzzy::Expr::Kind::kAnd);
}

TEST(ParseSqlTest, StringLiteralWithSingleQuotes) {
  auto result = ParseSubjectiveSql(
      "select * from Hotels where city = 'london'");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->conditions[0].objective.literal.AsString(), "london");
}

TEST(ParseSqlTest, OrAndParensAndNot) {
  auto result = ParseSubjectiveSql(
      "select * from T where (\"a\" or \"b\") and not x >= 2.5");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->conditions.size(), 3u);
  EXPECT_EQ(result->conditions[2].objective.literal.AsDouble(), 2.5);
  EXPECT_EQ(result->where->ToString(), "((p0 OR p1) AND NOT p2)");
}

TEST(ParseSqlTest, LimitClause) {
  auto result = ParseSubjectiveSql("select * from T where \"x\" limit 25");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->limit, 25u);
}

TEST(ParseSqlTest, DefaultLimitIsTen) {
  auto result = ParseSubjectiveSql("select * from T");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->limit, 10u);
  EXPECT_EQ(result->where, nullptr);
}

TEST(ParseSqlTest, CaseInsensitiveKeywords) {
  auto result =
      ParseSubjectiveSql("SELECT * FROM Hotels WHERE \"clean\" LIMIT 5");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table, "Hotels");
}

TEST(ParseSqlTest, NegativeAndFloatLiterals) {
  auto result = ParseSubjectiveSql("select * from T where x > -3");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->conditions[0].objective.literal.AsInt(), -3);
}

TEST(ParseSqlTest, Errors) {
  EXPECT_FALSE(ParseSubjectiveSql("").ok());
  EXPECT_FALSE(ParseSubjectiveSql("select foo from T").ok());
  EXPECT_FALSE(ParseSubjectiveSql("select * from").ok());
  EXPECT_FALSE(ParseSubjectiveSql("select * from T where").ok());
  EXPECT_FALSE(ParseSubjectiveSql("select * from T where x <").ok());
  EXPECT_FALSE(
      ParseSubjectiveSql("select * from T where \"unterminated").ok());
  EXPECT_FALSE(ParseSubjectiveSql("select * from T where (\"a\"").ok());
  EXPECT_FALSE(ParseSubjectiveSql("select * from T trailing").ok());
}

TEST(ParseSqlTest, TrailingSemicolonOk) {
  EXPECT_TRUE(ParseSubjectiveSql("select * from T;").ok());
}

}  // namespace
}  // namespace opinedb::core
