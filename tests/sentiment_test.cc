#include <gtest/gtest.h>

#include "sentiment/analyzer.h"

namespace opinedb::sentiment {
namespace {

class AnalyzerTest : public ::testing::Test {
 protected:
  Analyzer analyzer_;
};

TEST_F(AnalyzerTest, PositiveWords) {
  EXPECT_GT(analyzer_.ScorePhrase("clean"), 0.0);
  EXPECT_GT(analyzer_.ScorePhrase("excellent"), 0.0);
  EXPECT_GT(analyzer_.ScorePhrase("spotless room"), 0.0);
}

TEST_F(AnalyzerTest, NegativeWords) {
  EXPECT_LT(analyzer_.ScorePhrase("dirty"), 0.0);
  EXPECT_LT(analyzer_.ScorePhrase("filthy carpet"), 0.0);
  EXPECT_LT(analyzer_.ScorePhrase("rude staff"), 0.0);
}

TEST_F(AnalyzerTest, NeutralOrUnknownIsZero) {
  EXPECT_EQ(analyzer_.ScorePhrase("the room"), 0.0);
  EXPECT_EQ(analyzer_.ScorePhrase(""), 0.0);
  EXPECT_EQ(analyzer_.ScorePhrase("xyzzy frobnicate"), 0.0);
}

TEST_F(AnalyzerTest, StrongWordsBeatWeakWords) {
  EXPECT_GT(analyzer_.ScorePhrase("spotless"),
            analyzer_.ScorePhrase("tidy"));
  EXPECT_LT(analyzer_.ScorePhrase("filthy"),
            analyzer_.ScorePhrase("dusty"));
}

TEST_F(AnalyzerTest, NegationFlipsPolarity) {
  EXPECT_LT(analyzer_.ScorePhrase("not clean"), 0.0);
  EXPECT_GT(analyzer_.ScorePhrase("not dirty"), 0.0);
}

TEST_F(AnalyzerTest, IntensifierAmplifies) {
  EXPECT_GT(analyzer_.ScorePhrase("extremely clean"),
            analyzer_.ScorePhrase("clean"));
  EXPECT_LT(analyzer_.ScorePhrase("extremely dirty"),
            analyzer_.ScorePhrase("dirty"));
}

TEST_F(AnalyzerTest, DiminisherDampens) {
  EXPECT_LT(analyzer_.ScorePhrase("slightly clean"),
            analyzer_.ScorePhrase("clean"));
  EXPECT_GT(analyzer_.ScorePhrase("slightly dirty"),
            analyzer_.ScorePhrase("dirty"));
}

TEST_F(AnalyzerTest, ScoreBounded) {
  EXPECT_LE(analyzer_.ScorePhrase("extremely incredibly perfect"), 1.0);
  EXPECT_GE(analyzer_.ScorePhrase("extremely utterly filthy"), -1.0);
}

TEST_F(AnalyzerTest, DocumentAveragesSentences) {
  const double doc = analyzer_.ScoreDocument(
      "The room was clean. The staff was rude.");
  const double pos = analyzer_.ScorePhrase("the room was clean");
  const double neg = analyzer_.ScorePhrase("the staff was rude");
  EXPECT_NEAR(doc, (pos + neg) / 2.0, 1e-9);
}

TEST_F(AnalyzerTest, EmptyDocumentIsZero) {
  EXPECT_EQ(analyzer_.ScoreDocument(""), 0.0);
}

TEST(LexiconTest, DefaultHasBroadCoverage) {
  Lexicon lexicon = Lexicon::Default();
  EXPECT_GT(lexicon.size(), 150u);
  EXPECT_TRUE(lexicon.Contains("clean"));
  EXPECT_TRUE(lexicon.Contains("luxurious"));
  EXPECT_FALSE(lexicon.Contains("table"));
}

TEST(LexiconTest, SetClampsToRange) {
  Lexicon lexicon;
  lexicon.Set("super-great", 5.0);
  EXPECT_EQ(lexicon.valence("super-great"), 1.0);
  lexicon.Set("mega-bad", -7.0);
  EXPECT_EQ(lexicon.valence("mega-bad"), -1.0);
}

TEST(LexiconTest, OverwriteEntry) {
  Lexicon lexicon;
  lexicon.Set("word", 0.5);
  lexicon.Set("word", -0.5);
  EXPECT_EQ(lexicon.valence("word"), -0.5);
  EXPECT_EQ(lexicon.size(), 1u);
}

TEST(ModifierTest, NegationsAndIntensifiers) {
  EXPECT_TRUE(IsNegation("not"));
  EXPECT_TRUE(IsNegation("never"));
  EXPECT_FALSE(IsNegation("very"));
  EXPECT_GT(IntensityOf("very"), 1.0);
  EXPECT_LT(IntensityOf("slightly"), 1.0);
  EXPECT_EQ(IntensityOf("room"), 1.0);
}

TEST(AnalyzerPolarityOrderTest, LexiconGradesTrackValence) {
  // Linear-scale phrases must sort correctly by analyzer score — marker
  // induction for linearly-ordered domains depends on this invariant.
  Analyzer analyzer;
  const char* ordered[] = {"spotless", "clean", "average", "dusty",
                           "dirty", "filthy"};
  for (size_t i = 0; i + 1 < std::size(ordered); ++i) {
    EXPECT_GT(analyzer.ScorePhrase(ordered[i]),
              analyzer.ScorePhrase(ordered[i + 1]))
        << ordered[i] << " vs " << ordered[i + 1];
  }
}

}  // namespace
}  // namespace opinedb::sentiment
