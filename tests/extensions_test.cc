// Tests for the extension features: the degree-of-truth cache with
// Threshold-Algorithm top-k, user-profile personalization, unexpectedness
// mining, and serialization round-trips.
#include <sstream>

#include <gtest/gtest.h>

#include "core/degree_cache.h"
#include "core/personalize.h"
#include "core/serialize.h"
#include "datagen/domain_spec.h"
#include "embedding/io.h"
#include "eval/experiment.h"

namespace opinedb {
namespace {

class ExtensionsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eval::BuildOptions options;
    options.generator.num_entities = 30;
    options.generator.min_reviews_per_entity = 10;
    options.generator.max_reviews_per_entity = 20;
    options.generator.seed = 21;
    options.seed = 21;
    options.extractor_training_sentences = 400;
    options.predicate_pool_size = 60;
    options.membership_training_tuples = 500;
    artifacts_ = new eval::DomainArtifacts(
        eval::BuildArtifacts(datagen::HotelDomain(), options));
  }

  static void TearDownTestSuite() {
    delete artifacts_;
    artifacts_ = nullptr;
  }

  const core::OpineDb& db() const { return *artifacts_->db; }

  static eval::DomainArtifacts* artifacts_;
};

eval::DomainArtifacts* ExtensionsTest::artifacts_ = nullptr;

// --------------------------------------------------------- DegreeCache.

TEST_F(ExtensionsTest, DegreeCacheMatchesDirectEvaluation) {
  core::DegreeCache cache(&db());
  const auto& degrees = cache.Degrees("clean room");
  ASSERT_EQ(degrees.size(), db().corpus().num_entities());
  for (size_t e = 0; e < degrees.size(); ++e) {
    EXPECT_NEAR(degrees[e],
                db().PredicateDegreeOfTruth(
                    "clean room", static_cast<text::EntityId>(e)),
                1e-12);
  }
}

TEST_F(ExtensionsTest, DegreeCacheCachesByText) {
  core::DegreeCache cache(&db());
  EXPECT_FALSE(cache.Contains("friendly staff"));
  cache.Degrees("friendly staff");
  EXPECT_TRUE(cache.Contains("friendly staff"));
  EXPECT_EQ(cache.size(), 1u);
  cache.Degrees("friendly staff");
  EXPECT_EQ(cache.size(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(ExtensionsTest, PrecomputeMarkersMaterializesEveryMarker) {
  core::DegreeCache cache(&db());
  const size_t materialized = cache.PrecomputeMarkers();
  size_t expected = 0;
  for (const auto& attribute : db().schema().attributes) {
    expected += attribute.summary_type.markers.size();
  }
  // Duplicated marker phrases across attributes cache once.
  EXPECT_LE(materialized, expected);
  EXPECT_GT(materialized, 0u);
  EXPECT_EQ(cache.size(), materialized);
}

TEST_F(ExtensionsTest, ThresholdAlgorithmTopKMatchesFullScan) {
  core::DegreeCache cache(&db());
  const std::vector<std::string> predicates = {"clean room",
                                               "friendly staff",
                                               "quiet street"};
  auto ta = cache.TopKConjunction(predicates, 5);
  auto scan = cache.TopKConjunctionFullScan(predicates, 5);
  ASSERT_EQ(ta.size(), scan.size());
  for (size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].entity, scan[i].entity);
    EXPECT_NEAR(ta[i].score, scan[i].score, 1e-12);
  }
}

TEST_F(ExtensionsTest, ThresholdAlgorithmReportsStats) {
  core::DegreeCache cache(&db());
  fuzzy::TaStats stats;
  cache.TopKConjunction({"clean room", "comfortable bed"}, 3, &stats);
  EXPECT_GT(stats.sorted_accesses, 0u);
  EXPECT_GT(stats.rounds, 0u);
}

// ------------------------------------------------------- Personalizing.

TEST_F(ExtensionsTest, ProfileFromWeightsIgnoresUnknownNames) {
  auto profile = core::UserProfile::FromWeights(
      db(), {{"room_cleanliness", 1.0}, {"no_such_attr", 0.7}});
  ASSERT_EQ(profile.attribute_weights.size(),
            db().schema().num_attributes());
  const int attr = db().schema().AttributeIndex("room_cleanliness");
  EXPECT_EQ(profile.attribute_weights[attr], 1.0);
  double sum = 0.0;
  for (double w : profile.attribute_weights) sum += w;
  EXPECT_EQ(sum, 1.0);
}

TEST_F(ExtensionsTest, AffinityTracksLatentQuality) {
  const int attr = db().schema().AttributeIndex("breakfast_food");
  auto profile =
      core::UserProfile::FromWeights(db(), {{"breakfast_food", 1.0}});
  // Best vs worst breakfast by latent quality.
  int best = 0, worst = 0;
  const auto& entities = artifacts_->domain.entities;
  for (size_t e = 0; e < entities.size(); ++e) {
    if (entities[e].quality[attr] > entities[best].quality[attr]) {
      best = static_cast<int>(e);
    }
    if (entities[e].quality[attr] < entities[worst].quality[attr]) {
      worst = static_cast<int>(e);
    }
  }
  EXPECT_GT(core::ProfileAffinity(db(), profile, best),
            core::ProfileAffinity(db(), profile, worst));
}

TEST_F(ExtensionsTest, EmptyProfileHasZeroAffinity) {
  core::UserProfile profile;
  profile.attribute_weights.assign(db().schema().num_attributes(), 0.0);
  EXPECT_EQ(core::ProfileAffinity(db(), profile, 0), 0.0);
}

TEST_F(ExtensionsTest, PersonalizeReordersByBlendedScore) {
  auto result =
      db().Execute("select * from hotels where \"clean room\" limit 10");
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->results.size(), 2u);
  auto profile =
      core::UserProfile::FromWeights(db(), {{"bar_nightlife", 1.0}});
  auto personalized =
      core::PersonalizeResults(db(), profile, result->results, 1.0);
  // With blend = 1.0 the ordering is purely by affinity.
  for (size_t i = 1; i < personalized.size(); ++i) {
    EXPECT_GE(
        core::ProfileAffinity(db(), profile, personalized[i - 1].entity) +
            1e-12,
        core::ProfileAffinity(db(), profile, personalized[i].entity));
  }
  // With blend = 0.0 the original ordering is preserved.
  auto untouched =
      core::PersonalizeResults(db(), profile, result->results, 0.0);
  for (size_t i = 0; i < untouched.size(); ++i) {
    EXPECT_EQ(untouched[i].entity, result->results[i].entity);
  }
}

// ------------------------------------------------------ Unexpectedness.

TEST_F(ExtensionsTest, FindUnexpectedReturnsSortedFindings) {
  auto findings = core::FindUnexpected(
      db(), artifacts_->domain.objective_table, "price_pn", 10);
  ASSERT_TRUE(findings.ok()) << findings.status().ToString();
  ASSERT_FALSE(findings->empty());
  for (size_t i = 1; i < findings->size(); ++i) {
    EXPECT_GE(std::abs((*findings)[i - 1].surprise),
              std::abs((*findings)[i].surprise));
  }
  for (const auto& finding : *findings) {
    EXPECT_GE(finding.objective_percentile, 0.0);
    EXPECT_LE(finding.objective_percentile, 1.0);
    EXPECT_FALSE(finding.description.empty());
  }
}

TEST_F(ExtensionsTest, FindUnexpectedRejectsBadColumn) {
  auto findings = core::FindUnexpected(
      db(), artifacts_->domain.objective_table, "nope", 5);
  EXPECT_FALSE(findings.ok());
  auto string_col = core::FindUnexpected(
      db(), artifacts_->domain.objective_table, "city", 5);
  EXPECT_FALSE(string_col.ok());
}

// ------------------------------------------------------- Serialization.

TEST_F(ExtensionsTest, EmbeddingsRoundTrip) {
  std::stringstream buffer;
  ASSERT_TRUE(embedding::SaveEmbeddings(db().embeddings(), &buffer).ok());
  auto loaded = embedding::LoadEmbeddings(&buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), db().embeddings().size());
  EXPECT_EQ(loaded->dim(), db().embeddings().dim());
  const auto* original = db().embeddings().Get("clean");
  const auto* reloaded = loaded->Get("clean");
  ASSERT_NE(original, nullptr);
  ASSERT_NE(reloaded, nullptr);
  for (size_t d = 0; d < original->size(); ++d) {
    EXPECT_FLOAT_EQ((*original)[d], (*reloaded)[d]);
  }
  EXPECT_NEAR(loaded->Similarity("clean", "spotless"),
              db().embeddings().Similarity("clean", "spotless"), 1e-5);
}

TEST_F(ExtensionsTest, SchemaRoundTrip) {
  std::stringstream buffer;
  ASSERT_TRUE(core::SaveSchema(db().schema(), &buffer).ok());
  auto loaded = core::LoadSchema(&buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->objective_table, db().schema().objective_table);
  ASSERT_EQ(loaded->attributes.size(), db().schema().attributes.size());
  for (size_t a = 0; a < loaded->attributes.size(); ++a) {
    const auto& original = db().schema().attributes[a];
    const auto& reloaded = loaded->attributes[a];
    EXPECT_EQ(reloaded.name, original.name);
    EXPECT_EQ(reloaded.summary_type.kind, original.summary_type.kind);
    EXPECT_EQ(reloaded.summary_type.markers, original.summary_type.markers);
    EXPECT_EQ(reloaded.linguistic_domain, original.linguistic_domain);
    EXPECT_EQ(reloaded.seeds.aspect_terms, original.seeds.aspect_terms);
    EXPECT_EQ(reloaded.seeds.opinion_terms, original.seeds.opinion_terms);
  }
}

TEST_F(ExtensionsTest, SummariesRoundTrip) {
  std::stringstream buffer;
  ASSERT_TRUE(core::SaveSummaries(db().tables(), &buffer).ok());
  auto loaded = core::LoadSummaries(db().schema(), &buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->summaries.size(), db().tables().summaries.size());
  for (size_t a = 0; a < loaded->summaries.size(); ++a) {
    ASSERT_EQ(loaded->summaries[a].size(),
              db().tables().summaries[a].size());
    for (size_t e = 0; e < loaded->summaries[a].size(); ++e) {
      const auto& original = db().tables().summaries[a][e];
      const auto& reloaded = loaded->summaries[a][e];
      ASSERT_EQ(reloaded.num_markers(), original.num_markers());
      EXPECT_EQ(reloaded.unmatched_count(), original.unmatched_count());
      for (size_t m = 0; m < original.num_markers(); ++m) {
        EXPECT_DOUBLE_EQ(reloaded.count(m), original.count(m));
        EXPECT_DOUBLE_EQ(reloaded.cell(m).mean_sentiment,
                         original.cell(m).mean_sentiment);
        EXPECT_EQ(reloaded.cell(m).provenance, original.cell(m).provenance);
      }
    }
  }
}

TEST(SerializeErrorTest, RejectsGarbage) {
  std::stringstream garbage("not a schema at all");
  EXPECT_FALSE(core::LoadSchema(&garbage).ok());
  std::stringstream garbage2("nor embeddings");
  EXPECT_FALSE(embedding::LoadEmbeddings(&garbage2).ok());
  std::stringstream truncated("opinedb-schema 1\n6:hotels 4:name\n2\n");
  EXPECT_FALSE(core::LoadSchema(&truncated).ok());
}

TEST(SerializeErrorTest, RejectsWrongVersion) {
  std::stringstream future("opinedb-schema 99\n");
  auto result = core::LoadSchema(&future);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotSupported);
}

}  // namespace
}  // namespace opinedb
