// Plan-equivalence property test: for randomized fixture queries, every
// eligible physical plan (dense scan, filtered scan, TA top-k) must
// return bit-identical RankedResult lists — same entities, same names,
// same raw doubles — at 1 and 8 threads, with tracing off and full.
// This is the planner's §5b/§5c contract: plans trade work, never
// results. Run under -DOPINEDB_SANITIZE=thread like concurrency_test.
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/deadline.h"
#include "common/rng.h"
#include "core/degree_cache.h"
#include "datagen/domain_spec.h"
#include "eval/experiment.h"
#include "obs/trace.h"

namespace opinedb {
namespace {

class PlanEquivalenceTest : public ::testing::TestWithParam<const char*> {
 protected:
  static void SetUpTestSuite() {
    {
      eval::BuildOptions options;
      options.generator.num_entities = 30;
      options.generator.min_reviews_per_entity = 10;
      options.generator.max_reviews_per_entity = 20;
      options.generator.seed = 21;
      options.seed = 21;
      options.extractor_training_sentences = 400;
      options.predicate_pool_size = 60;
      options.membership_training_tuples = 500;
      hotel_ = new eval::DomainArtifacts(
          eval::BuildArtifacts(datagen::HotelDomain(), options));
    }
    {
      eval::BuildOptions options;
      options.generator.num_entities = 25;
      options.generator.min_reviews_per_entity = 8;
      options.generator.max_reviews_per_entity = 16;
      options.generator.seed = 22;
      options.seed = 22;
      options.extractor_training_sentences = 400;
      options.predicate_pool_size = 60;
      options.membership_training_tuples = 500;
      restaurant_ = new eval::DomainArtifacts(
          eval::BuildArtifacts(datagen::RestaurantDomain(), options));
    }
  }

  static void TearDownTestSuite() {
    delete hotel_;
    hotel_ = nullptr;
    delete restaurant_;
    restaurant_ = nullptr;
  }

  static eval::DomainArtifacts& Fixture(const std::string& name) {
    return name == "hotel" ? *hotel_ : *restaurant_;
  }

  /// Randomized query workload over the fixture's predicate pool and
  /// its objective columns. Deterministic (fixed Rng seed) so failures
  /// reproduce; shapes cover every plan's eligibility conditions plus
  /// limit boundaries (0, < entities, > entities).
  static std::vector<std::string> MakeQueries(const std::string& name) {
    const eval::DomainArtifacts& artifacts = Fixture(name);
    const std::string table =
        name == "hotel" ? "hotels" : "restaurants";
    std::vector<std::string> phrases;
    for (const auto& predicate : artifacts.pool) {
      if (phrases.size() >= 6) break;
      phrases.push_back(predicate.text);
    }
    const std::vector<std::string> objectives =
        name == "hotel"
            ? std::vector<std::string>{"price_pn < 280", "price_pn >= 150",
                                       "city = 'london'", "rating > 2.5"}
            : std::vector<std::string>{"price_range <= 2",
                                       "cuisine = 'italian'", "rating > 2.5",
                                       "price_range >= 2"};
    Rng rng(1234);
    auto phrase = [&] {
      return "\"" + phrases[rng.Below(phrases.size())] + "\"";
    };
    auto objective = [&] { return objectives[rng.Below(objectives.size())]; };
    const size_t limits[] = {0, 3, 10, 1000};
    std::vector<std::string> queries;
    for (int i = 0; i < 10; ++i) {
      std::string where;
      switch (i % 5) {
        case 0:  // Single subjective leaf (TA-eligible once cached).
          where = phrase();
          break;
        case 1:  // Conjunctive all-subjective (the TA sweet spot).
          where = phrase() + " and " + phrase();
          break;
        case 2:  // Hard objective + subjective (filtered scan).
          where = objective() + " and " + phrase();
          break;
        case 3:  // Objective under OR: not hard, second conjunct is.
          where = "(" + objective() + " or " + phrase() + ") and " +
                  phrase();
          break;
        case 4:  // Negation plus a hard objective conjunct.
          where = "not " + phrase() + " and " + objective();
          break;
      }
      queries.push_back("select * from " + table + " where " + where +
                        " limit " + std::to_string(limits[rng.Below(4)]));
    }
    queries.push_back("select * from " + table + " limit 7");
    return queries;
  }

  static eval::DomainArtifacts* hotel_;
  static eval::DomainArtifacts* restaurant_;
};

eval::DomainArtifacts* PlanEquivalenceTest::hotel_ = nullptr;
eval::DomainArtifacts* PlanEquivalenceTest::restaurant_ = nullptr;

// Bit-identical means EXPECT_EQ on the raw doubles — no tolerance.
void ExpectBitIdentical(const core::QueryResult& reference,
                        const core::QueryResult& actual) {
  ASSERT_EQ(reference.results.size(), actual.results.size());
  for (size_t i = 0; i < reference.results.size(); ++i) {
    EXPECT_EQ(reference.results[i].entity, actual.results[i].entity);
    EXPECT_EQ(reference.results[i].entity_name,
              actual.results[i].entity_name);
    EXPECT_EQ(reference.results[i].score, actual.results[i].score);
  }
}

TEST_P(PlanEquivalenceTest, EveryEligiblePlanBitIdenticalToDense) {
  core::OpineDb& db = *Fixture(GetParam()).db;
  core::DegreeCache cache(&db);
  db.AttachDegreeCache(&cache);
  std::set<core::PlanKind> plans_run;
  for (const auto& sql : MakeQueries(GetParam())) {
    // Reference: the pre-planner dense path, serial, trace off. Running
    // it with the cache attached also warms every subjective predicate,
    // so the TA sweep below runs over resident lists.
    db.SetNumThreads(1);
    db.SetTraceLevel(obs::TraceLevel::kOff);
    db.mutable_options()->force_plan = core::PlanForce::kDenseScan;
    auto reference = db.Execute(sql);
    ASSERT_TRUE(reference.ok()) << sql << ": "
                                << reference.status().ToString();
    ASSERT_EQ(reference->plan, core::PlanKind::kDenseScan);
    for (const auto force :
         {core::PlanForce::kAuto, core::PlanForce::kDenseScan,
          core::PlanForce::kFilteredScan, core::PlanForce::kTaTopK}) {
      for (const size_t threads : {1, 8}) {
        for (const auto level :
             {obs::TraceLevel::kOff, obs::TraceLevel::kFull}) {
          SCOPED_TRACE(sql + " force=" +
                       std::to_string(static_cast<int>(force)) +
                       " threads=" + std::to_string(threads) + " trace=" +
                       std::to_string(static_cast<int>(level)));
          db.SetNumThreads(threads);
          db.SetTraceLevel(level);
          db.mutable_options()->force_plan = force;
          auto run = db.Execute(sql);
          ASSERT_TRUE(run.ok()) << run.status().ToString();
          plans_run.insert(run->plan);
          ExpectBitIdentical(*reference, *run);
        }
      }
    }
  }
  // The sweep genuinely exercised all three plan shapes (a silent
  // eligibility regression would funnel everything into dense).
  EXPECT_EQ(plans_run.size(), 3u);

  db.mutable_options()->force_plan = core::PlanForce::kAuto;
  db.SetTraceLevel(obs::TraceLevel::kOff);
  db.SetNumThreads(1);
  db.AttachDegreeCache(nullptr);
}

TEST_P(PlanEquivalenceTest, AutoPicksTaOnWarmConjunctiveQueries) {
  core::OpineDb& db = *Fixture(GetParam()).db;
  const std::string table =
      std::string(GetParam()) == "hotel" ? "hotels" : "restaurants";
  const auto& pool = Fixture(GetParam()).pool;
  ASSERT_GE(pool.size(), 2u);
  const std::string sql = "select * from " + table + " where \"" +
                          pool[0].text + "\" and \"" + pool[1].text +
                          "\" limit 5";
  core::DegreeCache cache(&db);
  db.AttachDegreeCache(&cache);
  db.SetNumThreads(1);
  // Cold: the conjuncts are not resident yet, so the auto choice stays
  // dense (and warms the cache).
  auto cold = db.Execute(sql);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->plan, core::PlanKind::kDenseScan);
  EXPECT_EQ(cold->stats.entities_scored, db.corpus().num_entities());
  // Warm: both lists resident, conjunctive shape, bounded limit → TA,
  // with identical results and a recorded entities_seen figure.
  auto warm = db.Execute(sql);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->plan, core::PlanKind::kTaTopK);
  EXPECT_EQ(warm->stats.cache_hits, 2u);
  EXPECT_LE(warm->stats.entities_scored, db.corpus().num_entities());
  EXPECT_GT(warm->stats.entities_scored, 0u);
  ExpectBitIdentical(*cold, *warm);
  db.AttachDegreeCache(nullptr);
}

// §5e extension of the equivalence contract: an armed-but-never-firing
// QueryDeadline must be invisible. Rerunning the randomized workload
// under an effectively unlimited budget must stay bit-identical to the
// unbounded dense reference for every plan × thread count × trace
// level, with partial never set.
TEST_P(PlanEquivalenceTest, HugeDeadlineBudgetIsInvisible) {
  core::OpineDb& db = *Fixture(GetParam()).db;
  core::DegreeCache cache(&db);
  db.AttachDegreeCache(&cache);
  core::QueryControl control;
  control.deadline = QueryDeadline::AfterMillis(1e9);
  for (const auto& sql : MakeQueries(GetParam())) {
    db.SetNumThreads(1);
    db.SetTraceLevel(obs::TraceLevel::kOff);
    db.mutable_options()->force_plan = core::PlanForce::kDenseScan;
    auto reference = db.Execute(sql);
    ASSERT_TRUE(reference.ok()) << sql << ": "
                                << reference.status().ToString();
    for (const auto force :
         {core::PlanForce::kAuto, core::PlanForce::kDenseScan,
          core::PlanForce::kFilteredScan, core::PlanForce::kTaTopK}) {
      for (const size_t threads : {1, 8}) {
        for (const auto level :
             {obs::TraceLevel::kOff, obs::TraceLevel::kFull}) {
          SCOPED_TRACE(sql + " force=" +
                       std::to_string(static_cast<int>(force)) +
                       " threads=" + std::to_string(threads) + " trace=" +
                       std::to_string(static_cast<int>(level)));
          db.SetNumThreads(threads);
          db.SetTraceLevel(level);
          db.mutable_options()->force_plan = force;
          auto run = db.Execute(sql, control);
          ASSERT_TRUE(run.ok()) << run.status().ToString();
          EXPECT_FALSE(run->partial);
          EXPECT_FALSE(run->degraded);
          ExpectBitIdentical(*reference, *run);
        }
      }
    }
  }
  db.mutable_options()->force_plan = core::PlanForce::kAuto;
  db.SetTraceLevel(obs::TraceLevel::kOff);
  db.SetNumThreads(1);
  db.AttachDegreeCache(nullptr);
}

INSTANTIATE_TEST_SUITE_P(Domains, PlanEquivalenceTest,
                         ::testing::Values("hotel", "restaurant"));

}  // namespace
}  // namespace opinedb
