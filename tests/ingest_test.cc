// Incremental-ingest battery (docs/PERSISTENCE.md §WAL): the
// differential proof that OpineDb::AppendReviews is an invisible
// optimization over rebuilding, plus the WAL-backed durability loop.
//
//  1. append ≡ rebuild: appending batches and then Reaggregate-ing the
//     extended extraction relation must not change a byte of any
//     answer — the additive fold is exact, not approximate;
//  2. surgical cache maintenance: per-entity data epochs move only for
//     touched entities, the attached degree cache stays warm for
//     untouched predicates/entities, and refused mutations leave the
//     epoch alone (min_reviewer_reviews, unknown entities);
//  3. durability: EnableWal → append → reopen-from-snapshot → EnableWal
//     replays the tail bit-identically; Checkpoint folds the log into
//     the next snapshot generation and retires the segment; the
//     storage.wal_* crash sites (torn append, failed fsync, fold crash)
//     each leave a state recovery repairs without losing an
//     acknowledged batch;
//  4. concurrency: appends and checkpoints under a live query hammer at
//     8 threads keep answers bit-identical to a single-threaded
//     reference engine fed the same batches (the tsan gate for the
//     ingest path's locking);
//  5. the HTTP front door: POST /reviews admission control and
//     POST /admin/checkpoint surface the same contracts over JSON.
//
// Crash-site tests self-skip when OPINEDB_FAULT_INJECTION is off.
#include <cstdint>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "core/degree_cache.h"
#include "core/engine.h"
#include "datagen/domain_spec.h"
#include "eval/experiment.h"
#include "server/server.h"
#include "storage/wal.h"

namespace opinedb {
namespace {

namespace fs = std::filesystem;

/// One small, fully deterministic hotel-domain engine; every call with
/// the same seed yields bit-identical models, corpora and summaries.
eval::DomainArtifacts BuildEngine() {
  eval::BuildOptions options;
  options.generator.num_entities = 12;
  options.generator.min_reviews_per_entity = 5;
  options.generator.max_reviews_per_entity = 8;
  options.generator.seed = 83;
  options.seed = 83;
  options.extractor_training_sentences = 250;
  options.predicate_pool_size = 12;
  options.membership_training_tuples = 250;
  return eval::BuildArtifacts(datagen::HotelDomain(), options);
}

/// Deterministic review batches that actually extract opinions: bodies
/// reuse the hotel domain's vocabulary.
std::vector<text::Review> MakeBatch(uint64_t seed, int size,
                                    int32_t num_entities) {
  static const std::vector<std::string> kBodies = {
      "the room was very clean and the staff was friendly",
      "terrible noisy location but the bed was comfortable",
      "excellent breakfast and a spotless bathroom",
      "rude reception and the wifi never worked",
  };
  std::mt19937_64 rng(seed);
  std::vector<text::Review> batch;
  for (int i = 0; i < size; ++i) {
    text::Review review;
    review.entity = static_cast<int32_t>(rng() % num_entities);
    review.reviewer = 700 + static_cast<int32_t>(rng() % 9);
    review.date = 20260800 + static_cast<int32_t>(seed % 30);
    review.body = kBodies[rng() % kBodies.size()];
    batch.push_back(std::move(review));
  }
  return batch;
}

void ExpectBitIdentical(const core::QueryResult& want,
                        const core::QueryResult& got,
                        const std::string& context) {
  EXPECT_EQ(want.partial, got.partial) << context;
  EXPECT_EQ(want.degraded, got.degraded) << context;
  ASSERT_EQ(want.results.size(), got.results.size()) << context;
  for (size_t i = 0; i < want.results.size(); ++i) {
    EXPECT_EQ(want.results[i].entity, got.results[i].entity)
        << context << " rank " << i;
    EXPECT_EQ(want.results[i].score, got.results[i].score)
        << context << " rank " << i;  // Bit-exact doubles.
  }
}

class IngestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::DisarmAll();
    dir_ = fs::path(::testing::TempDir()) /
           ("ingest_test_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  void TearDown() override {
    fault::DisarmAll();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string dir() const { return dir_.string(); }

  static std::vector<std::string> PoolQueries(
      const eval::DomainArtifacts& artifacts, size_t count) {
    std::vector<std::string> queries;
    const std::string table = artifacts.db->schema().objective_table;
    for (size_t i = 0; i < count && i < artifacts.pool.size(); ++i) {
      queries.push_back("select * from " + table + " where \"" +
                        artifacts.pool[i].text + "\" limit 10");
    }
    return queries;
  }

  static core::QueryResult MustExecute(core::OpineDb& db,
                                       const std::string& sql) {
    auto result = db.Execute(sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? std::move(*result) : core::QueryResult{};
  }

  static void ExpectEnginesAgree(core::OpineDb& a, core::OpineDb& b,
                                 const std::vector<std::string>& queries,
                                 const std::string& context) {
    for (const std::string& sql : queries) {
      ExpectBitIdentical(MustExecute(a, sql), MustExecute(b, sql),
                         context + ": " + sql);
    }
  }

  fs::path dir_;
};

// ----------------------------------------------- Append ≡ rebuild.

TEST_F(IngestTest, AppendIsBitIdenticalToRebuildOfExtendedRelation) {
  eval::DomainArtifacts incremental = BuildEngine();
  eval::DomainArtifacts rebuilt = BuildEngine();
  const auto queries = PoolQueries(incremental, 8);
  const int32_t entities =
      static_cast<int32_t>(incremental.db->corpus().num_entities());

  for (uint64_t round = 0; round < 6; ++round) {
    const auto batch = MakeBatch(round, 1 + static_cast<int>(round % 4),
                                 entities);
    ASSERT_TRUE(incremental.db->AppendReviews(batch).ok());
    ASSERT_TRUE(rebuilt.db->AppendReviews(batch).ok());
  }
  // The rebuilt engine re-derives every summary from its (extended)
  // extraction relation; the incremental engine only ever folded
  // deltas. Their answers must not differ by a bit.
  ASSERT_TRUE(
      rebuilt.db->Reaggregate(rebuilt.db->options().aggregation).ok());
  ExpectEnginesAgree(*incremental.db, *rebuilt.db, queries,
                     "append vs rebuild");
  EXPECT_EQ(incremental.db->corpus().num_reviews(),
            rebuilt.db->corpus().num_reviews());
}

TEST_F(IngestTest, AppendUpdatesOnlyTouchedEntityEpochs) {
  eval::DomainArtifacts artifacts = BuildEngine();
  core::OpineDb& db = *artifacts.db;
  const int32_t entities = static_cast<int32_t>(db.corpus().num_entities());
  ASSERT_GE(entities, 3);

  std::vector<uint64_t> before;
  for (int32_t e = 0; e < entities; ++e) {
    before.push_back(db.entity_data_epoch(e));
  }
  const uint64_t epoch_before = db.cache_epoch();

  text::Review review;
  review.entity = 1;
  review.reviewer = 901;
  review.date = 20260807;
  review.body = "the staff was friendly and the room was clean";
  ASSERT_TRUE(db.AppendReviews({review}).ok());

  EXPECT_EQ(db.cache_epoch(), epoch_before + 1)
      << "one batch bumps the global epoch exactly once";
  for (int32_t e = 0; e < entities; ++e) {
    if (e == 1) {
      EXPECT_EQ(db.entity_data_epoch(e), epoch_before + 1);
    } else {
      EXPECT_EQ(db.entity_data_epoch(e), before[e])
          << "entity " << e << " was not touched";
    }
  }
}

TEST_F(IngestTest, DegreeCacheStaysWarmForUntouchedPredicates) {
  eval::DomainArtifacts artifacts = BuildEngine();
  core::OpineDb& db = *artifacts.db;
  core::DegreeCache cache(&db);
  db.AttachDegreeCache(&cache);

  // Warm one predicate list, then ingest. The refreshed cache must
  // serve it without recomputation — only touched entity slots are
  // patched in place.
  const std::string predicate = artifacts.pool[0].text;
  (void)cache.Degrees(predicate);
  const auto warm = cache.stats();

  ASSERT_TRUE(db.AppendReviews(MakeBatch(1, 2, static_cast<int32_t>(
                                                   db.corpus().num_entities())))
                  .ok());
  (void)cache.Degrees(predicate);
  const auto after = cache.stats();
  EXPECT_EQ(after.hits, warm.hits + 1)
      << "ingest must not evict warm degree lists";
  EXPECT_EQ(after.misses, warm.misses);

  // The patched list itself must be bit-identical to a cold recompute.
  core::DegreeCache cold(&db);
  EXPECT_EQ(cache.Degrees(predicate), cold.Degrees(predicate));
  db.AttachDegreeCache(nullptr);
}

// ------------------------------------------------- Refusal contracts.

TEST_F(IngestTest, RetroactiveReviewerFilterRefusesAppend) {
  eval::DomainArtifacts artifacts = BuildEngine();
  core::OpineDb& db = *artifacts.db;
  core::AggregationOptions filtered = db.options().aggregation;
  filtered.min_reviewer_reviews = 2;
  ASSERT_TRUE(db.Reaggregate(filtered).ok());

  const uint64_t epoch = db.cache_epoch();
  const size_t reviews = db.corpus().num_reviews();
  auto status = db.AppendReviews(
      MakeBatch(2, 1, static_cast<int32_t>(db.corpus().num_entities())));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(db.cache_epoch(), epoch) << "a refused append must be a no-op";
  EXPECT_EQ(db.corpus().num_reviews(), reviews);
}

TEST_F(IngestTest, UnknownEntityRefusesWholeBatch) {
  eval::DomainArtifacts artifacts = BuildEngine();
  core::OpineDb& db = *artifacts.db;
  const int32_t entities = static_cast<int32_t>(db.corpus().num_entities());

  auto batch = MakeBatch(3, 2, entities);
  batch[1].entity = entities + 5;  // Out of range.
  const uint64_t epoch = db.cache_epoch();
  const size_t reviews = db.corpus().num_reviews();
  auto status = db.AppendReviews(batch);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(db.cache_epoch(), epoch);
  EXPECT_EQ(db.corpus().num_reviews(), reviews)
      << "validation precedes application: no partial batch";
}

// ------------------------------------------------------- Durability.

TEST_F(IngestTest, WalReplayRecoversAppendsBitIdentically) {
  eval::DomainArtifacts live = BuildEngine();
  const auto queries = PoolQueries(live, 6);
  ASSERT_TRUE(live.db->SaveDatabase(dir()).ok());
  ASSERT_TRUE(live.db->EnableWal(dir()).ok());
  EXPECT_TRUE(live.db->wal_enabled());

  const int32_t entities =
      static_cast<int32_t>(live.db->corpus().num_entities());
  for (uint64_t round = 0; round < 4; ++round) {
    ASSERT_TRUE(live.db->AppendReviews(MakeBatch(10 + round, 2, entities)).ok());
  }

  // Crash-recover into a second engine: snapshot + WAL tail must equal
  // the live engine's in-memory state, bit for bit.
  eval::DomainArtifacts recovered = BuildEngine();
  ASSERT_TRUE(recovered.db->OpenDatabase(dir()).ok());
  ASSERT_TRUE(recovered.db->EnableWal(dir()).ok());
  EXPECT_EQ(recovered.db->corpus().num_reviews(),
            live.db->corpus().num_reviews());
  ExpectEnginesAgree(*live.db, *recovered.db, queries, "wal replay");
}

TEST_F(IngestTest, CheckpointFoldsWalAndRetiresSegment) {
  eval::DomainArtifacts live = BuildEngine();
  const auto queries = PoolQueries(live, 6);
  ASSERT_TRUE(live.db->SaveDatabase(dir()).ok());
  const uint64_t base = live.db->snapshot_generation();
  ASSERT_TRUE(live.db->EnableWal(dir()).ok());

  const int32_t entities =
      static_cast<int32_t>(live.db->corpus().num_entities());
  ASSERT_TRUE(live.db->AppendReviews(MakeBatch(20, 3, entities)).ok());
  ASSERT_TRUE(fs::exists(dir_ / storage::WalFileName(base)));

  ASSERT_TRUE(live.db->Checkpoint().ok());
  const uint64_t folded = live.db->snapshot_generation();
  EXPECT_GT(folded, base);
  EXPECT_FALSE(fs::exists(dir_ / storage::WalFileName(base)))
      << "a folded segment must be retired";
  EXPECT_TRUE(fs::exists(dir_ / storage::WalFileName(folded)))
      << "a fresh segment must be rotated in";
  EXPECT_TRUE(live.db->wal_enabled());

  // Post-checkpoint appends land in the new segment; recovery folds
  // snapshot + tail exactly as before.
  ASSERT_TRUE(live.db->AppendReviews(MakeBatch(21, 2, entities)).ok());
  eval::DomainArtifacts recovered = BuildEngine();
  ASSERT_TRUE(recovered.db->OpenDatabase(dir()).ok());
  EXPECT_EQ(recovered.db->snapshot_generation(), folded);
  ASSERT_TRUE(recovered.db->EnableWal(dir()).ok());
  ExpectEnginesAgree(*live.db, *recovered.db, queries, "post-checkpoint");
}

TEST_F(IngestTest, SaveDatabaseIsRefusedWhileWalIsAttached) {
  eval::DomainArtifacts artifacts = BuildEngine();
  ASSERT_TRUE(artifacts.db->SaveDatabase(dir()).ok());
  ASSERT_TRUE(artifacts.db->EnableWal(dir()).ok());
  auto status = artifacts.db->SaveDatabase(dir());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition)
      << "an out-of-band snapshot would orphan the active WAL segment";
}

TEST_F(IngestTest, CheckpointWithoutWalIsRefused) {
  eval::DomainArtifacts artifacts = BuildEngine();
  auto status = artifacts.db->Checkpoint();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

// ------------------------------------------------- Crash-site sweep.

TEST_F(IngestTest, TornAppendAppliesNothingAndRecoveryRepairs) {
  if (!fault::CompiledIn()) {
    GTEST_SKIP() << "fault injection compiled out (plain Release build)";
  }
  eval::DomainArtifacts live = BuildEngine();
  const auto queries = PoolQueries(live, 4);
  ASSERT_TRUE(live.db->SaveDatabase(dir()).ok());
  ASSERT_TRUE(live.db->EnableWal(dir()).ok());
  const int32_t entities =
      static_cast<int32_t>(live.db->corpus().num_entities());
  ASSERT_TRUE(live.db->AppendReviews(MakeBatch(30, 2, entities)).ok());

  std::vector<core::QueryResult> goldens;
  for (const auto& sql : queries) goldens.push_back(MustExecute(*live.db, sql));
  const uint64_t epoch = live.db->cache_epoch();
  const size_t reviews = live.db->corpus().num_reviews();

  fault::Arm("storage.wal_short_write", 1);
  auto torn = live.db->AppendReviews(MakeBatch(31, 2, entities));
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(fault::HitCount("storage.wal_short_write"), 1u);
  // Journal-first: a batch that never became durable must not have
  // touched the in-memory state either.
  EXPECT_EQ(live.db->cache_epoch(), epoch);
  EXPECT_EQ(live.db->corpus().num_reviews(), reviews);
  for (size_t i = 0; i < queries.size(); ++i) {
    ExpectBitIdentical(goldens[i], MustExecute(*live.db, queries[i]),
                       "after torn append");
  }

  // Recovery from the torn segment: the acknowledged batch replays, the
  // torn tail is truncated, and ingest resumes.
  eval::DomainArtifacts recovered = BuildEngine();
  ASSERT_TRUE(recovered.db->OpenDatabase(dir()).ok());
  ASSERT_TRUE(recovered.db->EnableWal(dir()).ok());
  EXPECT_EQ(recovered.db->corpus().num_reviews(), reviews);
  for (size_t i = 0; i < queries.size(); ++i) {
    ExpectBitIdentical(goldens[i], MustExecute(*recovered.db, queries[i]),
                       "after torn-tail recovery");
  }
  ASSERT_TRUE(recovered.db->AppendReviews(MakeBatch(32, 1, entities)).ok());
}

TEST_F(IngestTest, FsyncFailureAppliesNothing) {
  if (!fault::CompiledIn()) {
    GTEST_SKIP() << "fault injection compiled out (plain Release build)";
  }
  eval::DomainArtifacts live = BuildEngine();
  ASSERT_TRUE(live.db->SaveDatabase(dir()).ok());
  ASSERT_TRUE(live.db->EnableWal(dir()).ok());
  const int32_t entities =
      static_cast<int32_t>(live.db->corpus().num_entities());
  const uint64_t epoch = live.db->cache_epoch();
  const size_t reviews = live.db->corpus().num_reviews();

  fault::Arm("storage.wal_fsync", 1);
  ASSERT_FALSE(live.db->AppendReviews(MakeBatch(40, 2, entities)).ok());
  EXPECT_EQ(fault::HitCount("storage.wal_fsync"), 1u);
  EXPECT_EQ(live.db->cache_epoch(), epoch);
  EXPECT_EQ(live.db->corpus().num_reviews(), reviews);

  // The rolled-back segment replays to the pre-failure state.
  eval::DomainArtifacts recovered = BuildEngine();
  ASSERT_TRUE(recovered.db->OpenDatabase(dir()).ok());
  ASSERT_TRUE(recovered.db->EnableWal(dir()).ok());
  EXPECT_EQ(recovered.db->corpus().num_reviews(), reviews);
}

TEST_F(IngestTest, FoldCrashLeavesRecoverableCommittedSnapshot) {
  if (!fault::CompiledIn()) {
    GTEST_SKIP() << "fault injection compiled out (plain Release build)";
  }
  eval::DomainArtifacts live = BuildEngine();
  const auto queries = PoolQueries(live, 4);
  ASSERT_TRUE(live.db->SaveDatabase(dir()).ok());
  const uint64_t base = live.db->snapshot_generation();
  ASSERT_TRUE(live.db->EnableWal(dir()).ok());
  const int32_t entities =
      static_cast<int32_t>(live.db->corpus().num_entities());
  ASSERT_TRUE(live.db->AppendReviews(MakeBatch(50, 3, entities)).ok());

  // Crash between the checkpoint's snapshot commit and WAL retirement:
  // the new generation is durable, the old segment is stale droppings.
  fault::Arm("storage.wal_fold", 1);
  auto folded = live.db->Checkpoint();
  ASSERT_FALSE(folded.ok());
  EXPECT_EQ(fault::HitCount("storage.wal_fold"), 1u);
  EXPECT_FALSE(live.db->wal_enabled()) << "the crashed fold detaches the WAL";
  EXPECT_TRUE(fs::exists(dir_ / storage::WalFileName(base)))
      << "the stale segment survives the simulated crash";

  // Recovery serves the committed fold; the stale segment is ignored
  // (its base no longer matches) and retired by the next checkpoint.
  eval::DomainArtifacts recovered = BuildEngine();
  ASSERT_TRUE(recovered.db->OpenDatabase(dir()).ok());
  EXPECT_GT(recovered.db->snapshot_generation(), base);
  ASSERT_TRUE(recovered.db->EnableWal(dir()).ok());
  ExpectEnginesAgree(*live.db, *recovered.db, queries, "post-fold-crash");
  ASSERT_TRUE(recovered.db->Checkpoint().ok());
  EXPECT_FALSE(fs::exists(dir_ / storage::WalFileName(base)))
      << "the next clean checkpoint sweeps stale segments";
}

// ------------------------------------------------------ Concurrency.

TEST_F(IngestTest, AppendsUnderQueryHammerStayBitIdentical) {
  eval::DomainArtifacts hammered = BuildEngine();
  eval::DomainArtifacts reference = BuildEngine();
  const auto queries = PoolQueries(hammered, 6);
  hammered.db->SetNumThreads(8);
  ASSERT_TRUE(hammered.db->SaveDatabase(dir()).ok());
  ASSERT_TRUE(hammered.db->EnableWal(dir()).ok());
  const int32_t entities =
      static_cast<int32_t>(hammered.db->corpus().num_entities());

  // Bounded reader loops (not a stop flag): a glibc shared_mutex lets
  // tight-loop readers starve the exclusive-locking writer, so the
  // readers must terminate on their own for the appends to land.
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      size_t i = static_cast<size_t>(t);
      for (int n = 0; n < 24; ++n) {
        auto result = hammered.db->Execute(queries[i % queries.size()]);
        EXPECT_TRUE(result.ok()) << result.status().ToString();
        ++i;
      }
    });
  }
  for (uint64_t round = 0; round < 8; ++round) {
    ASSERT_TRUE(
        hammered.db->AppendReviews(MakeBatch(60 + round, 2, entities)).ok());
    if (round == 4) {
      ASSERT_TRUE(hammered.db->Checkpoint().ok());
    }
  }
  for (auto& thread : readers) thread.join();

  // The single-threaded reference engine fed the same batches must
  // agree bit-for-bit once the dust settles.
  for (uint64_t round = 0; round < 8; ++round) {
    ASSERT_TRUE(
        reference.db->AppendReviews(MakeBatch(60 + round, 2, entities)).ok());
  }
  hammered.db->SetNumThreads(1);
  ExpectEnginesAgree(*hammered.db, *reference.db, queries, "under hammer");
}

// -------------------------------------------------- HTTP front door.

class IngestServerTest : public IngestTest {
 protected:
  static server::HttpRequest Post(const std::string& path,
                                  const std::string& body) {
    server::HttpRequest request;
    request.method = "POST";
    request.target = path;
    request.path = path;
    request.body = body;
    return request;
  }
};

TEST_F(IngestServerTest, ReviewsRouteAppendsAndReportsEpoch) {
  eval::DomainArtifacts artifacts = BuildEngine();
  server::QueryServer srv(artifacts.db.get());
  const size_t reviews = artifacts.db->corpus().num_reviews();

  auto response = srv.Handle(Post(
      "/reviews",
      R"({"reviews": [{"entity": 0, "reviewer": 901, "date": 20260808,)"
      R"( "body": "the staff was friendly and the room was clean"},)"
      R"( {"entity": 1, "reviewer": 902, "date": 20260808,)"
      R"( "body": "excellent breakfast and a spotless bathroom"}]})"));
  EXPECT_EQ(response.status, 200) << response.body;
  EXPECT_NE(response.body.find("\"appended\": 2"), std::string::npos)
      << response.body;
  EXPECT_EQ(artifacts.db->corpus().num_reviews(), reviews + 2);
}

TEST_F(IngestServerTest, ReviewsRouteValidatesRequests) {
  eval::DomainArtifacts artifacts = BuildEngine();
  server::QueryServerOptions options;
  options.max_ingest_batch = 2;
  server::QueryServer srv(artifacts.db.get(), options);
  const size_t reviews = artifacts.db->corpus().num_reviews();

  server::HttpRequest get = Post("/reviews", "{}");
  get.method = "GET";
  EXPECT_EQ(srv.Handle(get).status, 405);
  EXPECT_EQ(srv.Handle(Post("/reviews", "not json")).status, 400);
  EXPECT_EQ(srv.Handle(Post("/reviews", "{}")).status, 400);
  EXPECT_EQ(srv.Handle(Post("/reviews", R"({"reviews": 3})")).status, 400);
  EXPECT_EQ(srv.Handle(Post("/reviews", R"({"reviews": [7]})")).status, 400);
  EXPECT_EQ(
      srv.Handle(Post("/reviews", R"({"reviews": [{"entity": 0}]})")).status,
      400);
  EXPECT_EQ(srv.Handle(Post("/reviews",
                            R"({"reviews": [{"entity": 0.5, "reviewer": 1,)"
                            R"( "date": 1, "body": "x"}]})"))
                .status,
            400)
      << "fractional ids are rejected, not rounded";
  // Admission control: a batch over the cap answers 400 before the
  // engine sees it.
  EXPECT_EQ(srv.Handle(Post("/reviews",
                            R"({"reviews": [)"
                            R"({"entity": 0, "reviewer": 1, "date": 1, "body": "a"},)"
                            R"({"entity": 0, "reviewer": 1, "date": 1, "body": "b"},)"
                            R"({"entity": 0, "reviewer": 1, "date": 1, "body": "c"}]})"))
                .status,
            400);
  // An unknown entity maps the engine's InvalidArgument onto 400.
  EXPECT_EQ(srv.Handle(Post("/reviews",
                            R"({"reviews": [{"entity": 999999,)"
                            R"( "reviewer": 1, "date": 1, "body": "x"}]})"))
                .status,
            400);
  EXPECT_EQ(artifacts.db->corpus().num_reviews(), reviews)
      << "no rejected request may mutate the corpus";
}

TEST_F(IngestServerTest, CheckpointRouteFoldsTheWal) {
  eval::DomainArtifacts artifacts = BuildEngine();
  server::QueryServer srv(artifacts.db.get());

  // Without a WAL the route surfaces the engine's FailedPrecondition
  // as a client error.
  EXPECT_EQ(srv.Handle(Post("/admin/checkpoint", "")).status, 400);

  ASSERT_TRUE(artifacts.db->SaveDatabase(dir()).ok());
  ASSERT_TRUE(artifacts.db->EnableWal(dir()).ok());
  const uint64_t base = artifacts.db->snapshot_generation();
  auto response = srv.Handle(Post(
      "/reviews",
      R"({"reviews": [{"entity": 0, "reviewer": 901, "date": 20260808,)"
      R"( "body": "rude reception and the wifi never worked"}]})"));
  ASSERT_EQ(response.status, 200) << response.body;

  auto folded = srv.Handle(Post("/admin/checkpoint", ""));
  EXPECT_EQ(folded.status, 200) << folded.body;
  EXPECT_GT(artifacts.db->snapshot_generation(), base);
  EXPECT_NE(folded.body.find("\"generation\""), std::string::npos);
}

}  // namespace
}  // namespace opinedb
