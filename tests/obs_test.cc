// Unit tests for the observability layer: MetricsRegistry (exact sums
// under concurrency, histogram bucketing, JSON export) and the TraceSpan
// / TraceBuffer machinery (nesting, attributes, ring-buffer overflow).
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace opinedb::obs {
namespace {

/// Saves and restores the process-wide metrics switch so these tests
/// cannot leak state into (or inherit state from) engine tests.
class MetricsSwitchGuard {
 public:
  MetricsSwitchGuard() : saved_(MetricsEnabled()) {}
  ~MetricsSwitchGuard() { SetMetricsEnabled(saved_); }

 private:
  bool saved_;
};

// ------------------------------------------------------------- Counter.

TEST(MetricsCounterTest, ConcurrentIncrementsSumExactly) {
  MetricsRegistry registry;
  auto* counter = registry.GetCounter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter->Add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
}

TEST(MetricsCounterTest, DeltaAndReset) {
  MetricsRegistry registry;
  auto* counter = registry.GetCounter("test.delta");
  counter->Add(5);
  counter->Add(7);
  EXPECT_EQ(counter->Value(), 12u);
  counter->Reset();
  EXPECT_EQ(counter->Value(), 0u);
}

TEST(MetricsCounterTest, SameNameReturnsSameInstrument) {
  MetricsRegistry registry;
  auto* a = registry.GetCounter("test.same");
  auto* b = registry.GetCounter("test.same");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, registry.GetCounter("test.other"));
}

// --------------------------------------------------------------- Gauge.

TEST(MetricsGaugeTest, SetAddValue) {
  MetricsRegistry registry;
  auto* gauge = registry.GetGauge("test.gauge");
  EXPECT_EQ(gauge->Value(), 0.0);
  gauge->Set(4.5);
  EXPECT_EQ(gauge->Value(), 4.5);
  gauge->Add(0.5);
  EXPECT_EQ(gauge->Value(), 5.0);
  gauge->Set(-1.0);  // Last write wins.
  EXPECT_EQ(gauge->Value(), -1.0);
}

// ----------------------------------------------------------- Histogram.

TEST(MetricsHistogramTest, BucketBoundaries) {
  MetricsRegistry registry;
  auto* histogram = registry.GetHistogram("test.hist", {1.0, 2.0, 5.0});
  // Bucket i counts observations <= bounds[i]; boundary values land in
  // the bucket they bound, values above the last bound in overflow.
  for (double v : {0.5, 1.0, 1.5, 2.0, 5.0, 7.0}) histogram->Observe(v);
  const auto counts = histogram->Counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow.
  EXPECT_EQ(counts[0], 2u);      // 0.5, 1.0
  EXPECT_EQ(counts[1], 2u);      // 1.5, 2.0
  EXPECT_EQ(counts[2], 1u);      // 5.0
  EXPECT_EQ(counts[3], 1u);      // 7.0 (overflow)
  EXPECT_EQ(histogram->TotalCount(), 6u);
  EXPECT_DOUBLE_EQ(histogram->Sum(), 0.5 + 1.0 + 1.5 + 2.0 + 5.0 + 7.0);
}

TEST(MetricsHistogramTest, ConcurrentObservationsSumExactly) {
  MetricsRegistry registry;
  auto* histogram = registry.GetHistogram("test.hist_mt", {10.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([histogram] {
      for (int i = 0; i < kPerThread; ++i) histogram->Observe(1.0);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(histogram->TotalCount(),
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(histogram->Sum(), kThreads * kPerThread * 1.0);
}

TEST(MetricsHistogramTest, LatencyBucketsAreStrictlyIncreasing) {
  const auto bounds = MetricsRegistry::LatencyBucketsMs();
  ASSERT_GE(bounds.size(), 2u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

// --------------------------------------------------------- JSON export.

TEST(MetricsRegistryTest, JsonExportSchema) {
  MetricsRegistry registry;
  registry.GetCounter("beta.counter")->Add(3);
  registry.GetCounter("alpha.counter")->Add(1);
  registry.GetGauge("depth")->Set(2.5);
  auto* histogram = registry.GetHistogram("lat", {1.0, 10.0});
  histogram->Observe(0.5);
  histogram->Observe(20.0);

  const std::string json = registry.ToJson();
  // Top-level sections.
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  // Instruments and values.
  EXPECT_NE(json.find("\"alpha.counter\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"beta.counter\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"depth\": 2.5"), std::string::npos);
  EXPECT_NE(json.find("\"bounds\": [1, 10]"), std::string::npos);
  EXPECT_NE(json.find("\"counts\": [1, 0, 1]"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
  // Deterministic ordering: map keys are sorted by name.
  EXPECT_LT(json.find("alpha.counter"), json.find("beta.counter"));
  // Scraping twice without writes is byte-identical.
  EXPECT_EQ(json, registry.ToJson());
}

TEST(MetricsRegistryTest, ResetAllZeroesButKeepsNames) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Add(9);
  registry.GetGauge("g")->Set(1.0);
  registry.GetHistogram("h", {1.0})->Observe(0.5);
  registry.ResetAll();
  EXPECT_EQ(registry.GetCounter("c")->Value(), 0u);
  EXPECT_EQ(registry.GetGauge("g")->Value(), 0.0);
  EXPECT_EQ(registry.GetHistogram("h", {1.0})->TotalCount(), 0u);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"c\": 0"), std::string::npos);
}

TEST(MetricsRegistryTest, MacrosRespectEnabledSwitch) {
  MetricsSwitchGuard guard;
  auto* counter =
      MetricsRegistry::Global().GetCounter("test.macro_switch");
  counter->Reset();
  SetMetricsEnabled(false);
  OPINEDB_METRIC_COUNT("test.macro_switch", 1);
  EXPECT_EQ(counter->Value(), 0u);
  SetMetricsEnabled(true);
  OPINEDB_METRIC_COUNT("test.macro_switch", 1);
  OPINEDB_METRIC_COUNT("test.macro_switch", 2);
  EXPECT_EQ(counter->Value(), 3u);
}

// ----------------------------------------------------------- TraceSpan.

TEST(TraceSpanTest, InertWithoutAmbientBuffer) {
  ASSERT_EQ(TraceScope::Current(), nullptr);
  TraceSpan span("orphan");
  EXPECT_FALSE(span.active());
  span.AddAttribute("key", "value");  // Must be a harmless no-op.
}

TEST(TraceSpanTest, RecordsNestingAndParentLinkage) {
  TraceBuffer buffer;
  {
    TraceScope scope(&buffer);
    TraceSpan outer("outer");
    ASSERT_TRUE(outer.active());
    {
      TraceSpan inner("inner");
      TraceSpan innermost("innermost");
      innermost.End();
      inner.End();
    }
    outer.End();
  }
  const auto spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // Recorded on End: deepest first, root last.
  EXPECT_EQ(spans[0].name, "innermost");
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[2].name, "outer");
  EXPECT_EQ(spans[2].parent_id, 0u);
  EXPECT_EQ(spans[1].parent_id, spans[2].id);
  EXPECT_EQ(spans[0].parent_id, spans[1].id);
  for (const auto& span : spans) EXPECT_GE(span.duration_ms, 0.0);
}

TEST(TraceSpanTest, SiblingsShareAParent) {
  TraceBuffer buffer;
  {
    TraceScope scope(&buffer);
    TraceSpan parent("parent");
    { TraceSpan a("a"); }
    { TraceSpan b("b"); }
  }
  const auto spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "a");
  EXPECT_EQ(spans[1].name, "b");
  EXPECT_EQ(spans[0].parent_id, spans[2].id);
  EXPECT_EQ(spans[1].parent_id, spans[2].id);
}

TEST(TraceSpanTest, CapturesTypedAttributes) {
  TraceBuffer buffer;
  {
    TraceScope scope(&buffer);
    TraceSpan span("attrs");
    span.AddAttribute("stage", "word2vec");
    span.AddAttribute("confidence", 0.75);
    span.AddAttribute("candidates", static_cast<uint64_t>(42));
    span.AddAttribute("cache_hit", true);
    span.AddAttribute("supported", false);
  }
  const auto spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].Attribute("stage"), "word2vec");
  EXPECT_EQ(spans[0].Attribute("confidence"), "0.75");
  EXPECT_EQ(spans[0].Attribute("candidates"), "42");
  EXPECT_EQ(spans[0].Attribute("cache_hit"), "true");
  EXPECT_EQ(spans[0].Attribute("supported"), "false");
  EXPECT_EQ(spans[0].Attribute("missing"), "");
}

TEST(TraceSpanTest, EndIsIdempotent) {
  TraceBuffer buffer;
  {
    TraceScope scope(&buffer);
    TraceSpan span("once");
    span.End();
    span.End();               // Second End must not double-record.
    span.AddAttribute("late", "ignored");
  }                           // Destructor must not record either.
  const auto spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].Attribute("late"), "");
}

TEST(TraceBufferTest, RingOverflowKeepsNewest) {
  TraceBuffer buffer(4);
  {
    TraceScope scope(&buffer);
    for (int i = 0; i < 10; ++i) {
      TraceSpan span("span" + std::to_string(i));
    }
  }
  EXPECT_EQ(buffer.dropped(), 6u);
  const auto spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // The newest four survive, oldest first.
  EXPECT_EQ(spans[0].name, "span6");
  EXPECT_EQ(spans[1].name, "span7");
  EXPECT_EQ(spans[2].name, "span8");
  EXPECT_EQ(spans[3].name, "span9");
}

TEST(TraceBufferTest, RootSurvivesOverflowBecauseItEndsLast) {
  TraceBuffer buffer(3);
  {
    TraceScope scope(&buffer);
    TraceSpan root("root");
    for (int i = 0; i < 8; ++i) {
      TraceSpan child("child" + std::to_string(i));
    }
  }
  const auto spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans.back().name, "root");
}

TEST(TraceScopeTest, NestsAndRestores) {
  TraceBuffer outer_buffer;
  TraceBuffer inner_buffer;
  EXPECT_EQ(TraceScope::Current(), nullptr);
  {
    TraceScope outer(&outer_buffer);
    EXPECT_EQ(TraceScope::Current(), &outer_buffer);
    {
      TraceScope inner(&inner_buffer);
      EXPECT_EQ(TraceScope::Current(), &inner_buffer);
      TraceSpan span("into_inner");
    }
    EXPECT_EQ(TraceScope::Current(), &outer_buffer);
  }
  EXPECT_EQ(TraceScope::Current(), nullptr);
  EXPECT_EQ(inner_buffer.Snapshot().size(), 1u);
  EXPECT_EQ(outer_buffer.Snapshot().size(), 0u);
}

TEST(TraceBufferTest, SpansAreInvisibleToOtherThreads) {
  TraceBuffer buffer;
  TraceScope scope(&buffer);
  // The ambient buffer is thread-local: a thread without its own
  // TraceScope records nothing (this is what keeps tracing out of the
  // ParallelFor workers and off the determinism contract).
  std::thread worker([] {
    TraceSpan span("worker_span");
    EXPECT_FALSE(span.active());
  });
  worker.join();
  { TraceSpan span("query_span"); }
  const auto spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "query_span");
}

TEST(TraceBufferTest, RenderTreeIndentsChildren) {
  TraceBuffer buffer;
  {
    TraceScope scope(&buffer);
    TraceSpan root("execute_query");
    {
      TraceSpan child("interpret");
      child.AddAttribute("stage", "word2vec");
    }
  }
  const std::string tree = buffer.RenderTree();
  EXPECT_EQ(tree.find("execute_query"), 0u);  // Root at column 0.
  EXPECT_NE(tree.find("\n  interpret"), std::string::npos);
  EXPECT_NE(tree.find("stage=word2vec"), std::string::npos);
  EXPECT_NE(tree.find("ms"), std::string::npos);
}

TEST(TraceBufferTest, ToJsonListsSpansWithAttributes) {
  TraceBuffer buffer;
  {
    TraceScope scope(&buffer);
    TraceSpan span("json_span");
    span.AddAttribute("key", "va\"lue");
  }
  const std::string json = buffer.ToJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"name\": \"json_span\""), std::string::npos);
  EXPECT_NE(json.find("\"key\": \"va\\\"lue\""), std::string::npos);
  EXPECT_NE(json.find("\"parent_id\": 0"), std::string::npos);
}

TEST(TraceLevelTest, ParseAndNameRoundTrip) {
  EXPECT_EQ(ParseTraceLevel("off"), TraceLevel::kOff);
  EXPECT_EQ(ParseTraceLevel("stats"), TraceLevel::kStats);
  EXPECT_EQ(ParseTraceLevel("full"), TraceLevel::kFull);
  EXPECT_EQ(ParseTraceLevel("garbage"), TraceLevel::kOff);
  EXPECT_STREQ(TraceLevelName(TraceLevel::kOff), "off");
  EXPECT_STREQ(TraceLevelName(TraceLevel::kStats), "stats");
  EXPECT_STREQ(TraceLevelName(TraceLevel::kFull), "full");
}

}  // namespace
}  // namespace opinedb::obs
