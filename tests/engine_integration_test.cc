#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "datagen/domain_spec.h"
#include "eval/experiment.h"

namespace opinedb {
namespace {

/// Builds one small hotel domain once and shares it across tests (the
/// build trains the extractor, embeddings, classifier and membership
/// model end-to-end).
class EngineIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eval::BuildOptions options;
    options.generator.num_entities = 40;
    options.generator.min_reviews_per_entity = 12;
    options.generator.max_reviews_per_entity = 25;
    options.generator.seed = 7;
    options.extractor_training_sentences = 500;
    options.predicate_pool_size = 80;
    options.membership_training_tuples = 600;
    artifacts_ = new eval::DomainArtifacts(
        eval::BuildArtifacts(datagen::HotelDomain(), options));
  }

  static void TearDownTestSuite() {
    delete artifacts_;
    artifacts_ = nullptr;
  }

  const core::OpineDb& db() const { return *artifacts_->db; }
  const datagen::SyntheticDomain& domain() const {
    return artifacts_->domain;
  }

  static eval::DomainArtifacts* artifacts_;
};

eval::DomainArtifacts* EngineIntegrationTest::artifacts_ = nullptr;

TEST_F(EngineIntegrationTest, BuildPopulatesEverything) {
  EXPECT_EQ(db().corpus().num_entities(), 40u);
  EXPECT_GT(db().corpus().num_reviews(), 400u);
  EXPECT_GT(db().embeddings().size(), 50u);
  EXPECT_GT(db().tables().extractions.size(), 1000u);
  EXPECT_TRUE(db().has_membership_model());
  // Linguistic domains were discovered from the reviews.
  size_t with_domain = 0;
  for (const auto& attribute : db().schema().attributes) {
    if (!attribute.linguistic_domain.empty()) ++with_domain;
  }
  EXPECT_GE(with_domain, db().schema().attributes.size() - 1);
}

TEST_F(EngineIntegrationTest, SummariesReflectLatentQuality) {
  // For cleanliness, the cleanest entity's summary must have more mass on
  // the top marker than the dirtiest entity's.
  const int attr = db().schema().AttributeIndex("room_cleanliness");
  ASSERT_GE(attr, 0);
  int cleanest = 0;
  int dirtiest = 0;
  for (size_t e = 0; e < domain().entities.size(); ++e) {
    if (domain().entities[e].quality[attr] >
        domain().entities[cleanest].quality[attr]) {
      cleanest = static_cast<int>(e);
    }
    if (domain().entities[e].quality[attr] <
        domain().entities[dirtiest].quality[attr]) {
      dirtiest = static_cast<int>(e);
    }
  }
  const auto& clean_summary = db().summary(attr, cleanest);
  const auto& dirty_summary = db().summary(attr, dirtiest);
  ASSERT_GT(clean_summary.total_count(), 0.0);
  ASSERT_GT(dirty_summary.total_count(), 0.0);
  const double clean_top = clean_summary.count(0) /
                           clean_summary.total_count();
  const double dirty_top = dirty_summary.count(0) /
                           dirty_summary.total_count();
  EXPECT_GT(clean_top, dirty_top);
}

TEST_F(EngineIntegrationTest, ExecuteRanksCleanHotelsFirst) {
  auto result = db().Execute(
      "select * from hotels where \"clean room\" limit 10");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->results.size(), 10u);
  const int attr = db().schema().AttributeIndex("room_cleanliness");
  // Mean latent cleanliness of the top 10 must beat the corpus mean.
  double top_mean = 0.0;
  for (const auto& r : result->results) {
    top_mean += domain().entities[r.entity].quality[attr];
  }
  top_mean /= 10.0;
  double all_mean = 0.0;
  for (const auto& entity : domain().entities) {
    all_mean += entity.quality[attr];
  }
  all_mean /= static_cast<double>(domain().entities.size());
  EXPECT_GT(top_mean, all_mean + 0.1);
}

TEST_F(EngineIntegrationTest, ObjectivePredicateFiltersHard) {
  auto result = db().Execute(
      "select * from hotels where city = 'london' and price_pn < 300 "
      "and \"friendly staff\" limit 40");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const auto& r : result->results) {
    EXPECT_EQ(domain().entities[r.entity].city, "london");
    EXPECT_LT(domain().entities[r.entity].price, 300);
  }
}

TEST_F(EngineIntegrationTest, ScoresAreSortedAndInRange) {
  auto result = db().Execute(
      "select * from hotels where \"quiet street\" and \"comfortable bed\" "
      "limit 20");
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < result->results.size(); ++i) {
    EXPECT_GE(result->results[i].score, 0.0);
    EXPECT_LE(result->results[i].score, 1.0);
    if (i > 0) {
      EXPECT_LE(result->results[i].score, result->results[i - 1].score);
    }
  }
}

TEST_F(EngineIntegrationTest, InterpreterMapsDirectPredicates) {
  const auto interpretation =
      db().interpreter().InterpretWord2VecOnly("clean room");
  ASSERT_FALSE(interpretation.atoms.empty());
  EXPECT_EQ(interpretation.atoms[0].attribute,
            db().schema().AttributeIndex("room_cleanliness"));
}

TEST_F(EngineIntegrationTest, CorrelatedConceptUsesCooccurrence) {
  const auto interpretation =
      db().interpreter().InterpretCooccurrenceOnly("romantic getaway");
  ASSERT_FALSE(interpretation.atoms.empty());
  // The concept triggers on staff_service and bathroom_style quality; the
  // mined interpretation must hit at least one trigger attribute.
  const int service = db().schema().AttributeIndex("staff_service");
  const int style = db().schema().AttributeIndex("bathroom_style");
  bool hit = false;
  for (const auto& atom : interpretation.atoms) {
    if (atom.attribute == service || atom.attribute == style) hit = true;
  }
  EXPECT_TRUE(hit);
}

TEST_F(EngineIntegrationTest, UnknownConceptFallsBackToText) {
  const auto interpretation =
      db().interpreter().Interpret("good for motorcyclists");
  EXPECT_EQ(interpretation.method, core::InterpretMethod::kTextFallback);
}

TEST_F(EngineIntegrationTest, TextFallbackDegreeInRange) {
  for (text::EntityId e = 0; e < 5; ++e) {
    const double d = db().TextFallbackDegree("romantic getaway", e);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
}

TEST_F(EngineIntegrationTest, ExecuteRejectsUnknownTable) {
  auto result = db().Execute("select * from nope where \"clean\"");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(EngineIntegrationTest, ExecuteRejectsUnknownColumn) {
  auto result = db().Execute("select * from hotels where wombats > 3");
  EXPECT_FALSE(result.ok());
}

TEST_F(EngineIntegrationTest, PredicateDegreeCorrelatesWithQuality) {
  const int attr = db().schema().AttributeIndex("breakfast_food");
  std::vector<std::pair<double, double>> pairs;  // (quality, degree)
  for (size_t e = 0; e < domain().entities.size(); ++e) {
    pairs.emplace_back(
        domain().entities[e].quality[attr],
        db().PredicateDegreeOfTruth("delicious breakfast",
                                    static_cast<text::EntityId>(e)));
  }
  // Spearman-ish check: the top-quality third must have a higher average
  // degree than the bottom third.
  std::sort(pairs.begin(), pairs.end());
  const size_t third = pairs.size() / 3;
  double low = 0.0;
  double high = 0.0;
  for (size_t i = 0; i < third; ++i) low += pairs[i].second;
  for (size_t i = pairs.size() - third; i < pairs.size(); ++i) {
    high += pairs[i].second;
  }
  EXPECT_GT(high / third, low / third);
}

TEST_F(EngineIntegrationTest, ReaggregationWithReviewerFilterShrinksMass) {
  // Count total summary mass, then require prolific reviewers only.
  auto* db_mutable = artifacts_->db.get();
  const int attr = 0;
  double before = 0.0;
  for (size_t e = 0; e < domain().entities.size(); ++e) {
    before += db().summary(attr, static_cast<text::EntityId>(e))
                  .total_count();
  }
  core::AggregationOptions filtered = db().options().aggregation;
  filtered.min_reviewer_reviews = 3;
  db_mutable->Reaggregate(filtered);
  double after = 0.0;
  for (size_t e = 0; e < domain().entities.size(); ++e) {
    after += db().summary(attr, static_cast<text::EntityId>(e))
                 .total_count();
  }
  EXPECT_LT(after, before);
  EXPECT_GT(after, 0.0);
  // Restore for other tests.
  core::AggregationOptions unfiltered = db().options().aggregation;
  unfiltered.min_reviewer_reviews.reset();
  db_mutable->Reaggregate(unfiltered);
}

TEST_F(EngineIntegrationTest, LimitIsRespected) {
  auto result =
      db().Execute("select * from hotels where \"clean room\" limit 3");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->results.size(), 3u);
}

TEST_F(EngineIntegrationTest, LimitZeroReturnsNoRows) {
  auto result =
      db().Execute("select * from hotels where \"clean room\" limit 0");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->results.empty());
  // The query still ran: interpretations and stats are populated.
  EXPECT_EQ(result->interpretations.size(), 1u);
  EXPECT_EQ(result->stats.entities_scored, db().corpus().num_entities());
}

TEST_F(EngineIntegrationTest, LimitBeyondEntityCountReturnsAllPositives) {
  auto capped =
      db().Execute("select * from hotels where \"clean room\" limit 40");
  auto excess =
      db().Execute("select * from hotels where \"clean room\" limit 1000");
  ASSERT_TRUE(capped.ok());
  ASSERT_TRUE(excess.ok());
  ASSERT_EQ(excess->results.size(), capped->results.size());
  EXPECT_LE(excess->results.size(), db().corpus().num_entities());
  for (size_t i = 0; i < excess->results.size(); ++i) {
    EXPECT_EQ(excess->results[i].entity, capped->results[i].entity);
    EXPECT_EQ(excess->results[i].score, capped->results[i].score);
  }
}

TEST_F(EngineIntegrationTest, EmptyWhereReturnsEntitiesInIdOrder) {
  auto result = db().Execute("select * from hotels limit 1000");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->results.size(), db().corpus().num_entities());
  for (size_t i = 0; i < result->results.size(); ++i) {
    // No WHERE: every entity scores exactly 1.0, so the score-desc /
    // entity-asc total order degenerates to entity-id order.
    EXPECT_EQ(result->results[i].entity, static_cast<text::EntityId>(i));
    EXPECT_EQ(result->results[i].score, 1.0);
  }
}

TEST_F(EngineIntegrationTest, ObjectivePushdownSkipsSubjectiveScoring) {
  // The filtered scan must only score survivors of the hard objective
  // predicates — the whole point of the pushdown.
  auto result = db().Execute(
      "select * from hotels where city = 'london' and price_pn < 300 "
      "and \"friendly staff\" limit 40");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan, core::PlanKind::kFilteredScan);
  size_t survivors = 0;
  for (const auto& entity : domain().entities) {
    if (entity.city == "london" && entity.price < 300) ++survivors;
  }
  ASSERT_LT(survivors, domain().entities.size());
  EXPECT_EQ(result->stats.entities_scored, survivors);
}

TEST_F(EngineIntegrationTest, ExplainPlansWithoutExecuting) {
  auto result = db().Execute(
      "explain select * from hotels where city = 'london' and "
      "\"friendly staff\" limit 5");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->results.empty());
  EXPECT_TRUE(result->interpretations.empty());
  EXPECT_EQ(result->plan, core::PlanKind::kFilteredScan);
  EXPECT_NE(result->plan_text.find("plan: filtered_scan"),
            std::string::npos)
      << result->plan_text;
  EXPECT_NE(result->plan_text.find("ObjectiveFilter(1 hard predicates)"),
            std::string::npos);
  // EXPLAIN never scores anything.
  EXPECT_EQ(result->stats.entities_scored, 0u);
}

TEST_F(EngineIntegrationTest, PlainQueriesLeavePlanTextEmpty) {
  auto result =
      db().Execute("select * from hotels where \"clean room\" limit 3");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->plan_text.empty());
  EXPECT_EQ(result->plan, core::PlanKind::kDenseScan);
}

TEST_F(EngineIntegrationTest, DisjunctionNeverBelowBestBranch) {
  // p OR q under the product variant: 1-(1-p)(1-q) >= max(p, q).
  auto both = db().Execute(
      "select * from hotels where (\"clean room\" or \"lively bar\") "
      "limit 40");
  auto clean = db().Execute(
      "select * from hotels where \"clean room\" limit 40");
  ASSERT_TRUE(both.ok());
  ASSERT_TRUE(clean.ok());
  // Compare per entity.
  std::vector<double> clean_score(domain().entities.size(), 0.0);
  for (const auto& r : clean->results) clean_score[r.entity] = r.score;
  for (const auto& r : both->results) {
    EXPECT_GE(r.score + 1e-9, clean_score[r.entity]);
  }
}

TEST_F(EngineIntegrationTest, NegatedPredicateInvertsPreference) {
  // NOT "clean room" should prefer low-cleanliness entities.
  auto result = db().Execute(
      "select * from hotels where not \"clean room\" limit 10");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->results.size(), 10u);
  const int attr = db().schema().AttributeIndex("room_cleanliness");
  double top_mean = 0.0;
  for (const auto& r : result->results) {
    top_mean += domain().entities[r.entity].quality[attr];
  }
  top_mean /= 10.0;
  double all_mean = 0.0;
  for (const auto& entity : domain().entities) {
    all_mean += entity.quality[attr];
  }
  all_mean /= static_cast<double>(domain().entities.size());
  EXPECT_LT(top_mean, all_mean);
}

TEST_F(EngineIntegrationTest, GodelVariantStillRanksSanely) {
  auto* mutable_db = artifacts_->db.get();
  const auto saved = db().options().variant;
  mutable_db->mutable_options()->variant = fuzzy::Variant::kGodel;
  auto result = db().Execute(
      "select * from hotels where \"clean room\" and \"friendly staff\" "
      "limit 10");
  mutable_db->mutable_options()->variant = saved;
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->results.size(), 10u);
  for (size_t i = 1; i < result->results.size(); ++i) {
    EXPECT_LE(result->results[i].score, result->results[i - 1].score);
  }
}

TEST_F(EngineIntegrationTest, ResultsCarryInterpretations) {
  auto result = db().Execute(
      "select * from hotels where price_pn > 0 and \"clean room\" "
      "limit 5");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->interpretations.size(), 2u);
  // The subjective condition's interpretation has atoms.
  EXPECT_FALSE(result->interpretations[1].atoms.empty());
}

TEST_F(EngineIntegrationTest, NoMarkerModeAgreesOnTopEntityQuality) {
  // The Table 7 ablation path: switching to no-marker features still
  // surfaces high-cleanliness entities for "clean room".
  auto* mutable_db = artifacts_->db.get();
  mutable_db->mutable_options()->use_markers = false;
  auto tuples = eval::MakeMembershipTuples(db(), domain(),
                                           artifacts_->pool, 500, false, 5);
  mutable_db->TrainMembership(tuples, 6);
  auto result = db().Execute(
      "select * from hotels where \"clean room\" limit 10");
  // Restore.
  mutable_db->mutable_options()->use_markers = true;
  auto restored = eval::MakeMembershipTuples(db(), domain(),
                                             artifacts_->pool, 500, true, 5);
  mutable_db->TrainMembership(restored, 6);

  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->results.size(), 10u);
  const int attr = db().schema().AttributeIndex("room_cleanliness");
  double top_mean = 0.0;
  for (const auto& r : result->results) {
    top_mean += domain().entities[r.entity].quality[attr];
  }
  top_mean /= 10.0;
  double all_mean = 0.0;
  for (const auto& entity : domain().entities) {
    all_mean += entity.quality[attr];
  }
  all_mean /= static_cast<double>(domain().entities.size());
  EXPECT_GT(top_mean, all_mean);
}

}  // namespace
}  // namespace opinedb
