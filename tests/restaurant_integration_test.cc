// End-to-end coverage of the second domain (restaurants): the engine is
// domain-agnostic, so everything that works for hotels must work here —
// including the Yelp-style generator knobs (long, positively-skewed
// reviews) and categorical-attribute querying.
#include <gtest/gtest.h>

#include "datagen/domain_spec.h"
#include "eval/experiment.h"

namespace opinedb {
namespace {

class RestaurantIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eval::BuildOptions options;
    options.generator.num_entities = 35;
    options.generator.min_reviews_per_entity = 8;
    options.generator.max_reviews_per_entity = 16;
    options.generator.min_sentences_per_review = 5;
    options.generator.max_sentences_per_review = 9;
    options.generator.quality_skew = 1.7;
    options.generator.seed = 77;
    options.seed = 77;
    options.extractor_training_sentences = 500;
    options.predicate_pool_size = 80;
    options.membership_training_tuples = 600;
    artifacts_ = new eval::DomainArtifacts(
        eval::BuildArtifacts(datagen::RestaurantDomain(), options));
  }

  static void TearDownTestSuite() {
    delete artifacts_;
    artifacts_ = nullptr;
  }

  const core::OpineDb& db() const { return *artifacts_->db; }
  const datagen::SyntheticDomain& domain() const {
    return artifacts_->domain;
  }

  static eval::DomainArtifacts* artifacts_;
};

eval::DomainArtifacts* RestaurantIntegrationTest::artifacts_ = nullptr;

TEST_F(RestaurantIntegrationTest, BuildSucceeds) {
  EXPECT_EQ(db().corpus().num_entities(), 35u);
  EXPECT_GT(db().tables().extractions.size(), 1000u);
  EXPECT_TRUE(db().has_membership_model());
}

TEST_F(RestaurantIntegrationTest, QualitySkewYieldsPositiveCorpus) {
  // The Yelp-style skew makes mean latent quality clearly above 0.5.
  double mean = 0.0;
  size_t n = 0;
  for (const auto& entity : domain().entities) {
    for (double q : entity.quality) {
      mean += q;
      ++n;
    }
  }
  EXPECT_GT(mean / static_cast<double>(n), 0.55);
}

TEST_F(RestaurantIntegrationTest, CuisineFilterPlusSubjective) {
  auto result = db().Execute(
      "select * from restaurants where cuisine = 'italian' and "
      "\"delicious food\" limit 35");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->results.empty());
  for (const auto& r : result->results) {
    EXPECT_EQ(domain().entities[r.entity].cuisine, "italian");
  }
}

TEST_F(RestaurantIntegrationTest, FoodPredicateTracksLatentQuality) {
  const int attr = db().schema().AttributeIndex("food_quality");
  ASSERT_GE(attr, 0);
  auto result = db().Execute(
      "select * from restaurants where \"delicious food\" limit 8");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->results.size(), 8u);
  double top_mean = 0.0;
  for (const auto& r : result->results) {
    top_mean += domain().entities[r.entity].quality[attr];
  }
  top_mean /= 8.0;
  double all_mean = 0.0;
  for (const auto& entity : domain().entities) {
    all_mean += entity.quality[attr];
  }
  all_mean /= static_cast<double>(domain().entities.size());
  EXPECT_GT(top_mean, all_mean);
}

TEST_F(RestaurantIntegrationTest, CategoricalAmbienceIsQueryable) {
  // "ambience" is a categorical attribute; direct marker queries work.
  const int attr = db().schema().AttributeIndex("ambience");
  ASSERT_GE(attr, 0);
  EXPECT_EQ(db().schema().attributes[attr].summary_type.kind,
            core::SummaryKind::kCategorical);
  auto result = db().Execute(
      "select * from restaurants where \"romantic atmosphere\" limit 5");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->results.empty());
}

TEST_F(RestaurantIntegrationTest, ConceptInterpretedViaTriggers) {
  const auto interpretation =
      db().interpreter().Interpret("private dinner vibe");
  ASSERT_FALSE(interpretation.atoms.empty());
  const int ambience = db().schema().AttributeIndex("ambience");
  const int noise = db().schema().AttributeIndex("noise_level");
  bool hit = false;
  for (const auto& atom : interpretation.atoms) {
    if (atom.attribute == ambience || atom.attribute == noise) hit = true;
  }
  EXPECT_TRUE(hit);
}

TEST_F(RestaurantIntegrationTest, FallbackQueryStillAnswers) {
  auto result = db().Execute(
      "select * from restaurants where \"good for birdwatchers\" limit 5");
  ASSERT_TRUE(result.ok());
  // Degrees may be tiny but the ranking must be well-formed.
  for (size_t i = 1; i < result->results.size(); ++i) {
    EXPECT_LE(result->results[i].score, result->results[i - 1].score);
  }
}

}  // namespace
}  // namespace opinedb
