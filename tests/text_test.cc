#include <gtest/gtest.h>

#include "text/corpus.h"
#include "text/tokenizer.h"
#include "text/vocab.h"

namespace opinedb::text {
namespace {

TEST(TokenizerTest, LowercasesAndSplits) {
  Tokenizer tokenizer;
  auto tokens = tokenizer.Tokenize("The Room was CLEAN");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "the");
  EXPECT_EQ(tokens[3], "clean");
}

TEST(TokenizerTest, DropsPunctuationByDefault) {
  Tokenizer tokenizer;
  auto tokens = tokenizer.Tokenize("clean, tidy!! (really)");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "clean");
  EXPECT_EQ(tokens[1], "tidy");
  EXPECT_EQ(tokens[2], "really");
}

TEST(TokenizerTest, KeepsIntrawordApostropheAndHyphen) {
  Tokenizer tokenizer;
  auto tokens = tokenizer.Tokenize("don't use worn-out sheets");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "don't");
  EXPECT_EQ(tokens[2], "worn-out");
}

TEST(TokenizerTest, TrailingHyphenStripped) {
  Tokenizer tokenizer;
  auto tokens = tokenizer.Tokenize("clean- room");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "clean");
}

TEST(TokenizerTest, EmptyInput) {
  Tokenizer tokenizer;
  EXPECT_TRUE(tokenizer.Tokenize("").empty());
  EXPECT_TRUE(tokenizer.Tokenize("  ,,, !!").empty());
}

TEST(TokenizerTest, KeepPunctuationOption) {
  TokenizerOptions options;
  options.drop_punctuation = false;
  Tokenizer tokenizer(options);
  auto tokens = tokenizer.Tokenize("clean, room");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1], ",");
}

TEST(TokenizerTest, SplitSentences) {
  auto sentences =
      Tokenizer::SplitSentences("The room was clean. Staff were rude! Ok?");
  ASSERT_EQ(sentences.size(), 3u);
  EXPECT_EQ(sentences[0], "The room was clean");
  EXPECT_EQ(sentences[1], " Staff were rude");
}

TEST(TokenizerTest, SplitSentencesSkipsEmpty) {
  auto sentences = Tokenizer::SplitSentences("... one sentence.. ");
  ASSERT_EQ(sentences.size(), 1u);
}

TEST(StopwordsTest, CommonWordsAreStopwords) {
  EXPECT_TRUE(IsStopword("the"));
  EXPECT_TRUE(IsStopword("was"));
  EXPECT_FALSE(IsStopword("clean"));
  EXPECT_FALSE(IsStopword("hotel"));
}

TEST(NGramsTest, Bigrams) {
  auto grams = NGrams({"very", "clean", "room"}, 2);
  ASSERT_EQ(grams.size(), 2u);
  EXPECT_EQ(grams[0], "very_clean");
  EXPECT_EQ(grams[1], "clean_room");
}

TEST(NGramsTest, DegenerateCases) {
  EXPECT_TRUE(NGrams({"a"}, 2).empty());
  EXPECT_TRUE(NGrams({"a", "b"}, 0).empty());
  EXPECT_EQ(NGrams({"a", "b"}, 2).size(), 1u);
}

TEST(VocabTest, AddAndLookup) {
  Vocab vocab;
  WordId a = vocab.Add("clean");
  WordId b = vocab.Add("dirty");
  WordId a2 = vocab.Add("clean");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(vocab.count(a), 2);
  EXPECT_EQ(vocab.count(b), 1);
  EXPECT_EQ(vocab.size(), 2u);
  EXPECT_EQ(vocab.total_count(), 3);
  EXPECT_EQ(vocab.Lookup("clean"), a);
  EXPECT_EQ(vocab.Lookup("missing"), kInvalidWordId);
  EXPECT_EQ(vocab.word(a), "clean");
}

TEST(VocabTest, PrunedDropsRareWords) {
  Vocab vocab;
  for (int i = 0; i < 5; ++i) vocab.Add("common");
  vocab.Add("rare");
  Vocab pruned = vocab.Pruned(2);
  EXPECT_EQ(pruned.size(), 1u);
  EXPECT_NE(pruned.Lookup("common"), kInvalidWordId);
  EXPECT_EQ(pruned.Lookup("rare"), kInvalidWordId);
}

TEST(CorpusTest, EntitiesAndReviews) {
  ReviewCorpus corpus;
  EntityId hotel_a = corpus.AddEntity("hotel_a");
  EntityId hotel_b = corpus.AddEntity("hotel_b");
  ReviewId r0 = corpus.AddReview(hotel_a, 7, 100, "clean room");
  ReviewId r1 = corpus.AddReview(hotel_b, 7, 200, "dirty room");
  ReviewId r2 = corpus.AddReview(hotel_a, 3, 300, "rude staff");
  EXPECT_EQ(corpus.num_entities(), 2u);
  EXPECT_EQ(corpus.num_reviews(), 3u);
  EXPECT_EQ(corpus.entity_name(hotel_a), "hotel_a");
  EXPECT_EQ(corpus.review(r1).body, "dirty room");
  ASSERT_EQ(corpus.entity_reviews(hotel_a).size(), 2u);
  EXPECT_EQ(corpus.entity_reviews(hotel_a)[0], r0);
  EXPECT_EQ(corpus.entity_reviews(hotel_a)[1], r2);
  EXPECT_EQ(corpus.reviewer_review_count(7), 2);
  EXPECT_EQ(corpus.reviewer_review_count(3), 1);
  EXPECT_EQ(corpus.reviewer_review_count(99), 0);
}

}  // namespace
}  // namespace opinedb::text
