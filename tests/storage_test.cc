#include <gtest/gtest.h>

#include "storage/table.h"
#include "storage/value.h"

namespace opinedb::storage {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(int64_t{5}).type(), ValueType::kInt);
  EXPECT_EQ(Value(2.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value(std::string("x")).type(), ValueType::kString);
  EXPECT_EQ(Value(int64_t{5}).AsInt(), 5);
  EXPECT_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value(std::string("x")).AsString(), "x");
}

TEST(ValueTest, NumericComparisonAcrossTypes) {
  EXPECT_EQ(Value(int64_t{2}).Compare(Value(2.0)), 0);
  EXPECT_LT(Value(int64_t{1}).Compare(Value(1.5)), 0);
  EXPECT_GT(Value(3.5).Compare(Value(int64_t{3})), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value(std::string("a")).Compare(Value(std::string("b"))), 0);
  EXPECT_EQ(Value(std::string("a")).Compare(Value(std::string("a"))), 0);
}

TEST(ValueTest, NullComparesLowest) {
  EXPECT_EQ(Value().Compare(Value()), 0);
  EXPECT_LT(Value().Compare(Value(int64_t{0})), 0);
  EXPECT_GT(Value(int64_t{0}).Compare(Value()), 0);
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(int64_t{7}).ToString(), "7");
  EXPECT_EQ(Value(std::string("hi")).ToString(), "hi");
}

class TableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = Table("hotels", {{"name", ValueType::kString},
                              {"city", ValueType::kString},
                              {"price", ValueType::kInt}});
    ASSERT_TRUE(table_
                    .Append({Value(std::string("a")),
                             Value(std::string("london")),
                             Value(int64_t{150})})
                    .ok());
    ASSERT_TRUE(table_
                    .Append({Value(std::string("b")),
                             Value(std::string("amsterdam")),
                             Value(int64_t{90})})
                    .ok());
  }

  Table table_;
};

TEST_F(TableTest, BasicShape) {
  EXPECT_EQ(table_.name(), "hotels");
  EXPECT_EQ(table_.num_rows(), 2u);
  EXPECT_EQ(table_.num_columns(), 3u);
  EXPECT_EQ(table_.ColumnIndex("city"), 1);
  EXPECT_EQ(table_.ColumnIndex("missing"), -1);
  EXPECT_EQ(table_.at(1, 2).AsInt(), 90);
}

TEST_F(TableTest, AppendChecksArity) {
  EXPECT_FALSE(table_.Append({Value(std::string("c"))}).ok());
}

TEST_F(TableTest, AppendChecksTypes) {
  auto status = table_.Append({Value(std::string("c")),
                               Value(std::string("london")),
                               Value(std::string("notanint"))});
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(TableTest, NullsAlwaysPassTypeCheck) {
  EXPECT_TRUE(
      table_.Append({Value(std::string("c")), Value(), Value()}).ok());
}

TEST_F(TableTest, PredicateEvaluation) {
  ColumnPredicate cheap{"price", CompareOp::kLt, Value(int64_t{100})};
  auto row0 = cheap.Evaluate(table_, 0);
  auto row1 = cheap.Evaluate(table_, 1);
  ASSERT_TRUE(row0.ok());
  ASSERT_TRUE(row1.ok());
  EXPECT_FALSE(*row0);
  EXPECT_TRUE(*row1);
}

TEST_F(TableTest, PredicateOnStrings) {
  ColumnPredicate in_london{"city", CompareOp::kEq,
                            Value(std::string("london"))};
  EXPECT_TRUE(*in_london.Evaluate(table_, 0));
  EXPECT_FALSE(*in_london.Evaluate(table_, 1));
}

TEST_F(TableTest, PredicateUnknownColumnErrors) {
  ColumnPredicate bad{"nope", CompareOp::kEq, Value(int64_t{1})};
  EXPECT_EQ(bad.Evaluate(table_, 0).status().code(), StatusCode::kNotFound);
}

TEST_F(TableTest, PredicateOnNullIsFalse) {
  ASSERT_TRUE(
      table_.Append({Value(std::string("c")), Value(), Value()}).ok());
  ColumnPredicate any_city{"city", CompareOp::kNe,
                           Value(std::string("london"))};
  EXPECT_FALSE(*any_city.Evaluate(table_, 2));
}

TEST_F(TableTest, BindResolvesColumnOncePerPredicate) {
  // Regression for the per-entity column re-resolution bug: a predicate
  // bound once must agree with per-row Evaluate on every row.
  ColumnPredicate cheap{"price", CompareOp::kLt, Value(int64_t{100})};
  auto bound = cheap.Bind(table_);
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(bound->column(), 2u);
  for (size_t row = 0; row < table_.num_rows(); ++row) {
    EXPECT_EQ(bound->Matches(table_, row), *cheap.Evaluate(table_, row))
        << "row " << row;
  }
}

TEST_F(TableTest, BindUnknownColumnErrors) {
  ColumnPredicate bad{"nope", CompareOp::kEq, Value(int64_t{1})};
  EXPECT_EQ(bad.Bind(table_).status().code(), StatusCode::kNotFound);
}

TEST_F(TableTest, BoundPredicateNullNeverMatches) {
  ASSERT_TRUE(
      table_.Append({Value(std::string("c")), Value(), Value()}).ok());
  ColumnPredicate any_city{"city", CompareOp::kNe,
                           Value(std::string("london"))};
  auto bound = any_city.Bind(table_);
  ASSERT_TRUE(bound.ok());
  EXPECT_FALSE(bound->Matches(table_, 2));
}

TEST(CompareOpTest, SymbolRoundTripsThroughParse) {
  for (CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                       CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
    auto parsed = ParseCompareOp(CompareOpSymbol(op));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, op);
  }
}

TEST(CompareOpTest, AllOperatorsEvaluate) {
  Table t("t", {{"x", ValueType::kInt}});
  ASSERT_TRUE(t.Append({Value(int64_t{5})}).ok());
  struct Case {
    CompareOp op;
    int64_t literal;
    bool expected;
  } cases[] = {
      {CompareOp::kEq, 5, true},  {CompareOp::kNe, 5, false},
      {CompareOp::kLt, 6, true},  {CompareOp::kLe, 5, true},
      {CompareOp::kGt, 5, false}, {CompareOp::kGe, 5, true},
  };
  for (const auto& c : cases) {
    ColumnPredicate p{"x", c.op, Value(c.literal)};
    EXPECT_EQ(*p.Evaluate(t, 0), c.expected);
  }
}

TEST(ParseCompareOpTest, AllSpellings) {
  EXPECT_TRUE(ParseCompareOp("=").ok());
  EXPECT_TRUE(ParseCompareOp("==").ok());
  EXPECT_TRUE(ParseCompareOp("!=").ok());
  EXPECT_TRUE(ParseCompareOp("<>").ok());
  EXPECT_TRUE(ParseCompareOp("<").ok());
  EXPECT_TRUE(ParseCompareOp("<=").ok());
  EXPECT_TRUE(ParseCompareOp(">").ok());
  EXPECT_TRUE(ParseCompareOp(">=").ok());
  EXPECT_FALSE(ParseCompareOp("~").ok());
}

TEST(CatalogTest, AddAndGet) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(Table("a", {})).ok());
  ASSERT_TRUE(catalog.AddTable(Table("b", {})).ok());
  EXPECT_TRUE(catalog.GetTable("a").ok());
  EXPECT_FALSE(catalog.GetTable("c").ok());
  EXPECT_EQ(catalog.TableNames().size(), 2u);
}

TEST(CatalogTest, DuplicateNameRejected) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(Table("a", {})).ok());
  EXPECT_EQ(catalog.AddTable(Table("a", {})).code(),
            StatusCode::kAlreadyExists);
}

TEST(CatalogTest, MutableAccess) {
  Catalog catalog;
  ASSERT_TRUE(
      catalog.AddTable(Table("a", {{"x", ValueType::kInt}})).ok());
  auto table = catalog.GetMutableTable("a");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->Append({Value(int64_t{1})}).ok());
  EXPECT_EQ((*catalog.GetTable("a"))->num_rows(), 1u);
}

}  // namespace
}  // namespace opinedb::storage
