// Parameterized property-style sweeps over the substrates: invariants
// that must hold across a range of configurations, not just the defaults.
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/string_util.h"
#include "datagen/domain_spec.h"
#include "datagen/generator.h"
#include "datagen/queries.h"
#include "embedding/word2vec.h"
#include "index/inverted_index.h"
#include "ml/kmeans.h"
#include "ml/logistic_regression.h"
#include "text/tokenizer.h"

namespace opinedb {
namespace {

// ------------------------------------------------- Tokenizer invariants.

class TokenizerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TokenizerPropertyTest, TokensAreLowercaseNonEmptyWordChars) {
  Rng rng(GetParam());
  text::Tokenizer tokenizer;
  // Random byte soup must never produce empty or non-normalized tokens.
  for (int trial = 0; trial < 50; ++trial) {
    std::string input;
    const size_t length = rng.Below(60);
    for (size_t i = 0; i < length; ++i) {
      input.push_back(static_cast<char>(rng.Int(32, 126)));
    }
    for (const auto& token : tokenizer.Tokenize(input)) {
      ASSERT_FALSE(token.empty());
      for (char c : token) {
        const bool word = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9');
        const bool intraword = c == '\'' || c == '-';
        ASSERT_TRUE(word || intraword)
            << "token '" << token << "' from input '" << input << "'";
      }
      ASSERT_FALSE(token.back() == '-' || token.back() == '\'');
    }
  }
}

TEST_P(TokenizerPropertyTest, TokenizationIsIdempotentOnJoinedOutput) {
  Rng rng(GetParam() + 100);
  text::Tokenizer tokenizer;
  for (int trial = 0; trial < 30; ++trial) {
    std::string input;
    const size_t length = rng.Below(80);
    for (size_t i = 0; i < length; ++i) {
      input.push_back(static_cast<char>(rng.Int(32, 126)));
    }
    auto first = tokenizer.Tokenize(input);
    auto second = tokenizer.Tokenize(Join(first, " "));
    EXPECT_EQ(first, second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenizerPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------- BM25 parameters.

class Bm25ParamTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(Bm25ParamTest, ScoresNonNegativeAndTfMonotone) {
  const auto [k1, b] = GetParam();
  index::Bm25Params params;
  params.k1 = k1;
  params.b = b;
  index::InvertedIndex index(params);
  index.AddDocument({"clean", "room", "x", "y"});
  index.AddDocument({"clean", "clean", "room", "y"});
  index.AddDocument({"a", "b", "c", "d"});
  EXPECT_GE(index.Score(2, {"clean"}), 0.0);
  EXPECT_GT(index.Score(1, {"clean"}), index.Score(0, {"clean"}));
  auto top = index.TopK({"clean"}, 3);
  ASSERT_GE(top.size(), 2u);
  EXPECT_EQ(top[0].doc, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Params, Bm25ParamTest,
    ::testing::Values(std::make_pair(0.5, 0.0), std::make_pair(1.2, 0.75),
                      std::make_pair(2.0, 1.0), std::make_pair(1.2, 0.0)));

// ----------------------------------------------------- word2vec sweep.

class Word2VecDimTest : public ::testing::TestWithParam<size_t> {};

TEST_P(Word2VecDimTest, TopicSeparationHoldsAcrossDimensions) {
  Rng rng(11);
  std::vector<std::vector<std::string>> sentences;
  const std::vector<std::string> clean = {"clean", "spotless", "tidy"};
  const std::vector<std::string> loud = {"noisy", "loud", "blaring"};
  for (int i = 0; i < 400; ++i) {
    const auto& pool = (i % 2 == 0) ? clean : loud;
    std::vector<std::string> sentence;
    for (int j = 0; j < 5; ++j) {
      sentence.push_back(pool[rng.Below(pool.size())]);
    }
    sentences.push_back(std::move(sentence));
  }
  embedding::Word2VecOptions options;
  options.dim = GetParam();
  options.epochs = 8;
  auto model = embedding::WordEmbeddings::TrainSgns(sentences, options);
  EXPECT_GT(model.Similarity("clean", "spotless"),
            model.Similarity("clean", "noisy"));
}

INSTANTIATE_TEST_SUITE_P(Dims, Word2VecDimTest,
                         ::testing::Values(8, 16, 32, 64));

// --------------------------------------------------------- LR stability.

class LogRegSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LogRegSeedTest, AccuracyStableAcrossSeeds) {
  Rng rng(GetParam());
  std::vector<ml::Example> train, test;
  for (int i = 0; i < 500; ++i) {
    ml::Example ex;
    const double x = rng.Uniform(-1, 1);
    const double y = rng.Uniform(-1, 1);
    ex.features = {x, y, rng.Uniform()};  // Third feature is noise.
    ex.label = (2.0 * x - y > 0.0) ? 1 : 0;
    (i % 5 == 0 ? test : train).push_back(std::move(ex));
  }
  ml::LogRegOptions options;
  options.seed = GetParam() * 31 + 7;
  auto model = ml::LogisticRegression::Train(train, options);
  EXPECT_GT(model.Accuracy(test), 0.9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LogRegSeedTest,
                         ::testing::Values(1, 7, 21, 42, 1234));

// -------------------------------------------------------- k-means in k.

class KMeansKTest : public ::testing::TestWithParam<size_t> {};

TEST_P(KMeansKTest, InertiaNonIncreasingInK) {
  Rng rng(5);
  std::vector<embedding::Vec> points;
  for (int i = 0; i < 120; ++i) {
    points.push_back({static_cast<float>(rng.Uniform()),
                      static_cast<float>(rng.Uniform())});
  }
  const size_t k = GetParam();
  const auto smaller = ml::KMeans(points, k);
  const auto larger = ml::KMeans(points, k + 2);
  // More clusters can only reduce (or keep) the optimal inertia;
  // Lloyd's is a local optimizer, so allow a small tolerance.
  EXPECT_LE(larger.inertia, smaller.inertia * 1.10);
  // Assignments reference valid clusters.
  for (int32_t assignment : smaller.assignment) {
    EXPECT_GE(assignment, 0);
    EXPECT_LT(assignment, static_cast<int32_t>(smaller.centroids.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, KMeansKTest, ::testing::Values(2, 3, 5, 8));

// ------------------------------------------- generator scale invariants.

class GeneratorScaleTest : public ::testing::TestWithParam<size_t> {};

TEST_P(GeneratorScaleTest, DomainsWellFormedAtEveryScale) {
  datagen::GeneratorOptions options;
  options.num_entities = GetParam();
  options.min_reviews_per_entity = 3;
  options.max_reviews_per_entity = 6;
  options.seed = 17;
  auto domain = datagen::GenerateDomain(datagen::RestaurantDomain(),
                                        options);
  EXPECT_EQ(domain.entities.size(), GetParam());
  EXPECT_EQ(domain.corpus.num_entities(), GetParam());
  EXPECT_EQ(domain.objective_table.num_rows(), GetParam());
  for (const auto& entity : domain.entities) {
    EXPECT_EQ(entity.quality.size(), domain.spec.attributes.size());
    for (double q : entity.quality) {
      EXPECT_GE(q, 0.0);
      EXPECT_LE(q, 1.0);
    }
    EXPECT_GE(entity.rating, 1.0);
    EXPECT_LE(entity.rating, 5.0);
  }
  for (const auto& review : domain.corpus.reviews()) {
    EXPECT_FALSE(review.body.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GeneratorScaleTest,
                         ::testing::Values(1, 5, 25, 80));

// ------------------------------------------- quality skew is monotone.

class QualitySkewTest : public ::testing::TestWithParam<double> {};

TEST_P(QualitySkewTest, SkewRaisesMeanQuality) {
  datagen::GeneratorOptions uniform;
  uniform.num_entities = 60;
  uniform.min_reviews_per_entity = 1;
  uniform.max_reviews_per_entity = 1;
  uniform.seed = 23;
  datagen::GeneratorOptions skewed = uniform;
  skewed.quality_skew = GetParam();
  auto a = datagen::GenerateDomain(datagen::HotelDomain(), uniform);
  auto b = datagen::GenerateDomain(datagen::HotelDomain(), skewed);
  auto mean_quality = [](const datagen::SyntheticDomain& domain) {
    double sum = 0.0;
    size_t n = 0;
    for (const auto& entity : domain.entities) {
      for (double q : entity.quality) {
        sum += q;
        ++n;
      }
    }
    return sum / static_cast<double>(n);
  };
  EXPECT_GT(mean_quality(b), mean_quality(a));
}

INSTANTIATE_TEST_SUITE_P(Skews, QualitySkewTest,
                         ::testing::Values(1.3, 1.7, 2.5));

// ------------------------------------- predicate pools across domains.

class PoolDomainTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PoolDomainTest, PoolsAreValidForEveryDomain) {
  const std::string name = GetParam();
  auto spec = name == "hotel" ? datagen::HotelDomain()
                              : datagen::RestaurantDomain();
  auto pool = datagen::BuildPredicatePool(spec, 120, 3);
  EXPECT_EQ(pool.size(), 120u);
  for (const auto& predicate : pool) {
    EXPECT_FALSE(predicate.text.empty());
    for (int attr : predicate.quality_attributes) {
      EXPECT_GE(attr, 0);
      EXPECT_LT(attr, static_cast<int>(spec.attributes.size()));
    }
    EXPECT_GT(predicate.threshold, 0.0);
    EXPECT_LT(predicate.threshold, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Domains, PoolDomainTest,
                         ::testing::Values("hotel", "restaurant"));

}  // namespace
}  // namespace opinedb
