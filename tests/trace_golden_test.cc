// Golden-trace tests: for fixed fixtures (hotel seed 21, restaurant
// seed 22 — the same builds as concurrency_test.cc) and a fixed query
// list, the per-query trace must contain the exact cascade stage the
// interpreter chose for every subjective predicate. Pinning the stage
// (word2vec / cooccurrence / text_fallback) turns a silent behavioral
// drift in the Fig. 5 cascade into a loud test failure.
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/degree_cache.h"
#include "datagen/domain_spec.h"
#include "eval/experiment.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/http_client.h"
#include "server/json.h"
#include "server/server.h"

namespace opinedb {
namespace {

class TraceGoldenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    {
      eval::BuildOptions options;
      options.generator.num_entities = 30;
      options.generator.min_reviews_per_entity = 10;
      options.generator.max_reviews_per_entity = 20;
      options.generator.seed = 21;
      options.seed = 21;
      options.extractor_training_sentences = 400;
      options.predicate_pool_size = 60;
      options.membership_training_tuples = 500;
      hotel_ = new eval::DomainArtifacts(
          eval::BuildArtifacts(datagen::HotelDomain(), options));
    }
    {
      eval::BuildOptions options;
      options.generator.num_entities = 25;
      options.generator.min_reviews_per_entity = 8;
      options.generator.max_reviews_per_entity = 16;
      options.generator.seed = 22;
      options.seed = 22;
      options.extractor_training_sentences = 400;
      options.predicate_pool_size = 60;
      options.membership_training_tuples = 500;
      restaurant_ = new eval::DomainArtifacts(
          eval::BuildArtifacts(datagen::RestaurantDomain(), options));
    }
  }

  static void TearDownTestSuite() {
    delete hotel_;
    hotel_ = nullptr;
    delete restaurant_;
    restaurant_ = nullptr;
  }

  void TearDown() override {
    // Every test restores the default level so suites can interleave.
    hotel_->db->SetTraceLevel(obs::TraceLevel::kOff);
    restaurant_->db->SetTraceLevel(obs::TraceLevel::kOff);
  }

  /// Runs `sql` at trace_level full and returns the "stage" attribute of
  /// every interpret.predicate span, in recording order.
  static std::vector<std::string> CascadeStages(core::OpineDb* db,
                                                const std::string& sql) {
    db->SetTraceLevel(obs::TraceLevel::kFull);
    auto result = db->Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
    if (!result.ok() || result->trace == nullptr) return {};
    std::vector<std::string> stages;
    for (const auto& span : result->trace->Snapshot()) {
      if (span.name == "interpret.predicate") {
        stages.emplace_back(span.Attribute("stage"));
      }
    }
    return stages;
  }

  static std::string Join(const std::vector<std::string>& stages) {
    std::string out;
    for (const auto& stage : stages) {
      if (!out.empty()) out += ",";
      out += stage;
    }
    return out;
  }

  static eval::DomainArtifacts* hotel_;
  static eval::DomainArtifacts* restaurant_;
};

eval::DomainArtifacts* TraceGoldenTest::hotel_ = nullptr;
eval::DomainArtifacts* TraceGoldenTest::restaurant_ = nullptr;

struct GoldenCase {
  const char* sql;
  const char* stages;  // Comma-joined, one per subjective predicate.
};

// ------------------------------------------------ Golden stage tables.
// These pin the exact Fig. 5 cascade decision per fixture query. If an
// interpreter change legitimately moves a predicate to another stage,
// the new stage must be reviewed and re-pinned here on purpose.

TEST_F(TraceGoldenTest, HotelCascadeStagesMatchGolden) {
  const GoldenCase kCases[] = {
      {"select * from hotels where \"clean room\" limit 10", "word2vec"},
      {"select * from hotels where \"friendly staff\" limit 10",
       "word2vec"},
      {"select * from hotels where \"clean room\" and \"friendly staff\" "
       "limit 8",
       "word2vec,word2vec"},
      {"select * from hotels where \"comfortable bed\" or \"quiet "
       "street\" limit 30",
       "word2vec,word2vec"},
      {"select * from hotels where \"romantic getaway\" limit 10",
       "cooccurrence"},
      {"select * from hotels where \"good for motorcyclists\" limit 10",
       "text_fallback"},
      {"select * from hotels where price_pn < 300 and \"clean room\" "
       "limit 10",
       "word2vec"},  // Objective conditions never enter the cascade.
  };
  for (const auto& test_case : kCases) {
    EXPECT_EQ(Join(CascadeStages(hotel_->db.get(), test_case.sql)),
              test_case.stages)
        << test_case.sql;
  }
}

TEST_F(TraceGoldenTest, RestaurantCascadeStagesMatchGolden) {
  const GoldenCase kCases[] = {
      {"select * from restaurants where \"delicious food\" limit 10",
       "word2vec"},
      // "great service" sits in the w2v mid-band and wins on the
      // strong-co-occurrence override; "fast service" clears neither
      // threshold on this fixture and falls through to BM25.
      {"select * from restaurants where \"great service\" limit 10",
       "cooccurrence"},
      {"select * from restaurants where \"delicious food\" and \"great "
       "service\" limit 8",
       "word2vec,cooccurrence"},
      {"select * from restaurants where \"cozy atmosphere\" or \"fast "
       "service\" limit 25",
       "word2vec,text_fallback"},
      {"select * from restaurants where \"good for octopuses\" limit 5",
       "text_fallback"},
  };
  for (const auto& test_case : kCases) {
    EXPECT_EQ(Join(CascadeStages(restaurant_->db.get(), test_case.sql)),
              test_case.stages)
        << test_case.sql;
  }
}

TEST_F(TraceGoldenTest, StagesAreDeterministicAcrossRuns) {
  const std::string sql =
      "select * from hotels where \"clean room\" and \"romantic "
      "getaway\" limit 10";
  const auto first = CascadeStages(hotel_->db.get(), sql);
  const auto second = CascadeStages(hotel_->db.get(), sql);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.size(), 2u);
}

// -------------------------------------------------- Trace structure.

TEST_F(TraceGoldenTest, TraceTreeHasExpectedShape) {
  core::OpineDb* db = hotel_->db.get();
  db->SetTraceLevel(obs::TraceLevel::kFull);
  auto result =
      db->Execute("select * from hotels where \"clean room\" limit 5");
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result->trace, nullptr);
  const auto spans = result->trace->Snapshot();
  ASSERT_FALSE(spans.empty());

  // The root ends last, so it is the final record; phases hang off it.
  const auto& root = spans.back();
  EXPECT_EQ(root.name, "execute_query");
  EXPECT_EQ(root.parent_id, 0u);
  EXPECT_EQ(root.Attribute("table"), "hotels");
  EXPECT_EQ(root.Attribute("conditions"), "1");
  EXPECT_EQ(root.Attribute("plan"), "dense_scan");

  auto find = [&spans](const std::string& name) -> const obs::SpanRecord* {
    for (const auto& span : spans) {
      if (span.name == name) return &span;
    }
    return nullptr;
  };
  const auto* interpret = find("interpret");
  const auto* predicate = find("interpret.predicate");
  const auto* w2v = find("interpret.word2vec");
  const auto* score = find("score");
  const auto* condition = find("score.condition");
  const auto* rank = find("combine_rank");
  ASSERT_NE(interpret, nullptr);
  ASSERT_NE(predicate, nullptr);
  ASSERT_NE(w2v, nullptr);
  ASSERT_NE(score, nullptr);
  ASSERT_NE(condition, nullptr);
  ASSERT_NE(rank, nullptr);

  // Hierarchy: phases under the root, cascade under interpret.
  EXPECT_EQ(interpret->parent_id, root.id);
  EXPECT_EQ(score->parent_id, root.id);
  EXPECT_EQ(rank->parent_id, root.id);
  EXPECT_EQ(predicate->parent_id, interpret->id);
  EXPECT_EQ(w2v->parent_id, predicate->id);

  // The threshold decisions of Fig. 5 are on the cascade span.
  EXPECT_EQ(predicate->Attribute("predicate"), "clean room");
  EXPECT_FALSE(predicate->Attribute("w2v_confidence").empty());
  EXPECT_FALSE(predicate->Attribute("w2v_threshold").empty());
  // Uncached subjective scoring reports its source.
  EXPECT_EQ(condition->Attribute("source"), "computed");
  EXPECT_EQ(rank->Attribute("results"), "5");

  // Render paths produce non-trivial output for this real trace.
  const std::string tree = result->trace->RenderTree();
  EXPECT_EQ(tree.find("execute_query"), 0u);
  EXPECT_NE(tree.find("\n  interpret"), std::string::npos);
  EXPECT_NE(result->trace->ToJson().find("\"name\": \"execute_query\""),
            std::string::npos);
}

TEST_F(TraceGoldenTest, FilteredScanEmitsObjectiveFilterSpan) {
  core::OpineDb* db = hotel_->db.get();
  db->SetTraceLevel(obs::TraceLevel::kFull);
  auto result = db->Execute(
      "select * from hotels where city = 'london' and price_pn < 300 "
      "and \"friendly staff\" limit 10");
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result->trace, nullptr);
  const auto spans = result->trace->Snapshot();
  const auto& root = spans.back();
  EXPECT_EQ(root.Attribute("plan"), "filtered_scan");
  const obs::SpanRecord* filter = nullptr;
  for (const auto& span : spans) {
    if (span.name == "objective_filter") filter = &span;
  }
  ASSERT_NE(filter, nullptr);
  EXPECT_EQ(filter->parent_id, root.id);
  EXPECT_EQ(filter->Attribute("predicates"), "2");
  EXPECT_EQ(filter->Attribute("entities"), "30");
  // Survivors match the query's entities_scored — the pushdown shrank
  // the scoring fan-out.
  EXPECT_EQ(filter->Attribute("survivors"),
            std::to_string(result->stats.entities_scored));
  EXPECT_LT(result->stats.entities_scored, db->corpus().num_entities());
}

TEST_F(TraceGoldenTest, TaPlanEmitsTaTopKSpan) {
  core::OpineDb* db = restaurant_->db.get();
  core::DegreeCache cache(db);
  db->AttachDegreeCache(&cache);
  db->SetTraceLevel(obs::TraceLevel::kFull);
  const std::string sql =
      "select * from restaurants where \"delicious food\" and "
      "\"great service\" limit 5";
  auto cold = db->Execute(sql);  // Warms both degree lists.
  ASSERT_TRUE(cold.ok());
  auto warm = db->Execute(sql);
  ASSERT_TRUE(warm.ok());
  ASSERT_NE(warm->trace, nullptr);
  const auto spans = warm->trace->Snapshot();
  const auto& root = spans.back();
  EXPECT_EQ(root.Attribute("plan"), "ta_topk");
  const obs::SpanRecord* ta = nullptr;
  const obs::SpanRecord* inner = nullptr;
  for (const auto& span : spans) {
    if (span.name == "ta_topk") ta = &span;
    if (span.name == "fuzzy.ta") inner = &span;
  }
  ASSERT_NE(ta, nullptr);
  EXPECT_EQ(ta->parent_id, root.id);
  EXPECT_EQ(ta->Attribute("lists"), "2");
  EXPECT_EQ(ta->Attribute("k"), "5");
  // The TA core span nests under the operator and reports its work.
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->parent_id, ta->id);
  EXPECT_FALSE(inner->Attribute("sorted_accesses").empty());
  db->AttachDegreeCache(nullptr);
}

// --------------------------------------------------- EXPLAIN goldens.
// EXPLAIN output is part of the observable surface: pin the full text
// on both fixtures so format drift is a reviewed change, not an
// accident.

TEST_F(TraceGoldenTest, HotelExplainMatchesGolden) {
  auto result = hotel_->db->Execute(
      "explain select * from hotels where city = 'london' and "
      "\"friendly staff\" limit 5");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->plan_text,
            "plan: filtered_scan\n"
            "table: hotels  limit: 5  variant: product\n"
            "where: (p0 AND p1)\n"
            "conditions:\n"
            "  [0] objective  city = 'london' [hard]\n"
            "  [1] subjective \"friendly staff\"\n"
            "operators:\n"
            "  ObjectiveFilter(1 hard predicates)\n"
            "  SubjectiveScore(2 condition lists over survivors)\n"
            "  Rank(top 5, partial_sort)\n");
}

TEST_F(TraceGoldenTest, RestaurantExplainMatchesGolden) {
  auto result = restaurant_->db->Execute(
      "explain select * from restaurants where \"delicious food\" and "
      "\"great service\" limit 3");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->plan_text,
            "plan: dense_scan\n"
            "table: restaurants  limit: 3  variant: product\n"
            "where: (p0 AND p1)\n"
            "conditions:\n"
            "  [0] subjective \"delicious food\"\n"
            "  [1] subjective \"great service\"\n"
            "operators:\n"
            "  SubjectiveScore(2 condition lists over all entities)\n"
            "  Rank(top 3, partial_sort)\n");
}

TEST_F(TraceGoldenTest, CacheHitAndMissAreRecordedInSpans) {
  core::OpineDb* db = hotel_->db.get();
  db->SetTraceLevel(obs::TraceLevel::kFull);
  core::DegreeCache cache(db);
  db->AttachDegreeCache(&cache);
  const std::string sql =
      "select * from hotels where \"quiet street\" limit 5";

  auto source_of = [](const core::QueryResult& result) -> std::string {
    for (const auto& span : result.trace->Snapshot()) {
      if (span.name == "score.condition") {
        return std::string(span.Attribute("source"));
      }
    }
    return "";
  };
  auto cold = db->Execute(sql);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(source_of(*cold), "cache_miss");
  auto warm = db->Execute(sql);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(source_of(*warm), "cache_hit");
  db->AttachDegreeCache(nullptr);
}

TEST_F(TraceGoldenTest, NoTraceBelowFullLevel) {
  core::OpineDb* db = restaurant_->db.get();
  const std::string sql =
      "select * from restaurants where \"delicious food\" limit 5";
  db->SetTraceLevel(obs::TraceLevel::kOff);
  auto off = db->Execute(sql);
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off->trace, nullptr);
  db->SetTraceLevel(obs::TraceLevel::kStats);
  auto stats = db->Execute(sql);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->trace, nullptr);
}

TEST_F(TraceGoldenTest, StatsLevelPublishesRegistryMetrics) {
  core::OpineDb* db = restaurant_->db.get();
  db->SetTraceLevel(obs::TraceLevel::kStats);
  auto& registry = obs::MetricsRegistry::Global();
  auto* queries = registry.GetCounter("engine.queries");
  auto* scored = registry.GetCounter("engine.entities_scored");
  const uint64_t queries_before = queries->Value();
  const uint64_t scored_before = scored->Value();
  auto result = db->Execute(
      "select * from restaurants where \"great service\" limit 5");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(queries->Value(), queries_before + 1);
  EXPECT_EQ(scored->Value(),
            scored_before + db->corpus().num_entities());
  // The ExecutionStats façade and the registry agree.
  EXPECT_EQ(result->stats.entities_scored, db->corpus().num_entities());
}

// ------------------------------------------- Traces over the wire.
// The query server forwards TraceBuffer::ToJson verbatim when the
// client asks (?trace=1) and the engine runs at kFull. Pin the served
// span tree's schema and the cascade content so the HTTP surface
// cannot drift away from the embedded one.

TEST_F(TraceGoldenTest, ServedTraceSpanTreeMatchesGoldenSchema) {
  core::OpineDb* db = hotel_->db.get();
  db->SetTraceLevel(obs::TraceLevel::kFull);
  server::QueryServer query_server(db);
  ASSERT_TRUE(query_server.Start().ok());
  server::HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", query_server.port()).ok());
  const char* body =
      "{\"sql\": \"select * from hotels where \\\"clean room\\\" "
      "limit 5\"}";

  // Without the flag the document has no trace section at all.
  auto plain = client.Post("/query", body);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  ASSERT_EQ(plain->status, 200);
  EXPECT_EQ(plain->body.find("\"trace\""), std::string::npos);

  auto traced = client.Post("/query?trace=1", body);
  ASSERT_TRUE(traced.ok()) << traced.status().ToString();
  ASSERT_EQ(traced->status, 200);
  auto doc = server::JsonValue::Parse(traced->body);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const server::JsonValue* trace = doc->Find("trace");
  ASSERT_NE(trace, nullptr);
  ASSERT_TRUE(trace->is_array());
  ASSERT_FALSE(trace->items().empty());

  // Schema pin: every span renders exactly these seven fields, with
  // attributes as a string-to-string object.
  const char* const kSpanFields[] = {"id",       "parent_id",   "seq",
                                     "name",     "start_ms",
                                     "duration_ms", "attributes"};
  std::map<std::string, const server::JsonValue*> by_name;
  for (const server::JsonValue& span : trace->items()) {
    ASSERT_TRUE(span.is_object());
    ASSERT_EQ(span.members().size(), 7u);
    for (const char* field : kSpanFields) {
      ASSERT_NE(span.Find(field), nullptr) << "span missing " << field;
    }
    EXPECT_TRUE(span.Find("attributes")->is_object());
    by_name[*span.GetString("name")] = &span;
  }

  // Content pin: the cascade skeleton serves intact, parented as in
  // TraceTreeHasExpectedShape, with the golden stage decision.
  for (const char* name :
       {"execute_query", "interpret", "interpret.predicate",
        "interpret.word2vec", "score", "score.condition", "combine_rank"}) {
    EXPECT_TRUE(by_name.count(name)) << "served trace lost span " << name;
  }
  const server::JsonValue* root = by_name["execute_query"];
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->GetNumber("parent_id"), std::make_optional(0.0));
  EXPECT_EQ(root->Find("attributes")->GetString("plan"),
            std::make_optional<std::string>("dense_scan"));
  const server::JsonValue* predicate = by_name["interpret.predicate"];
  ASSERT_NE(predicate, nullptr);
  EXPECT_EQ(predicate->Find("attributes")->GetString("predicate"),
            std::make_optional<std::string>("clean room"));
  EXPECT_EQ(predicate->Find("attributes")->GetString("stage"),
            std::make_optional<std::string>("word2vec"));
  EXPECT_EQ(predicate->GetNumber("parent_id"),
            by_name["interpret"]->GetNumber("id"));

  // The served span tree is the embedded one: same names, same
  // parent/child edges (timings differ run to run, structure may not).
  auto embedded = db->Execute(
      "select * from hotels where \"clean room\" limit 5");
  ASSERT_TRUE(embedded.ok());
  ASSERT_NE(embedded->trace, nullptr);
  std::multiset<std::string> served_edges, embedded_edges;
  std::map<double, std::string> served_names;
  for (const server::JsonValue& span : trace->items()) {
    served_names[*span.GetNumber("id")] = *span.GetString("name");
  }
  for (const server::JsonValue& span : trace->items()) {
    const double parent = *span.GetNumber("parent_id");
    served_edges.insert(*span.GetString("name") + "<-" +
                        (parent == 0 ? "root" : served_names[parent]));
  }
  std::map<uint64_t, std::string> embedded_names;
  for (const auto& span : embedded->trace->Snapshot()) {
    embedded_names[span.id] = span.name;
  }
  for (const auto& span : embedded->trace->Snapshot()) {
    embedded_edges.insert(
        span.name + "<-" +
        (span.parent_id == 0 ? "root" : embedded_names[span.parent_id]));
  }
  EXPECT_EQ(served_edges, embedded_edges);
  query_server.Stop();
}

TEST_F(TraceGoldenTest, TraceFlagWithoutFullLevelServesNoTrace) {
  core::OpineDb* db = restaurant_->db.get();
  db->SetTraceLevel(obs::TraceLevel::kOff);
  server::QueryServer query_server(db);
  ASSERT_TRUE(query_server.Start().ok());
  server::HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", query_server.port()).ok());
  auto response = client.Post(
      "/query?trace=1",
      "{\"sql\": \"select * from restaurants where \\\"delicious "
      "food\\\" limit 5\"}");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->status, 200);
  // The flag asks; only the engine's level grants. No trace section.
  EXPECT_EQ(response->body.find("\"trace\""), std::string::npos);
  query_server.Stop();
}

TEST_F(TraceGoldenTest, TraceLevelFullResultsIdenticalToOff) {
  // Tracing must observe, never perturb: scores and order are identical
  // with the ring buffer on and off.
  core::OpineDb* db = hotel_->db.get();
  const std::string sql =
      "select * from hotels where \"comfortable bed\" limit 10";
  db->SetTraceLevel(obs::TraceLevel::kOff);
  auto off = db->Execute(sql);
  ASSERT_TRUE(off.ok());
  db->SetTraceLevel(obs::TraceLevel::kFull);
  auto full = db->Execute(sql);
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(off->results.size(), full->results.size());
  for (size_t i = 0; i < off->results.size(); ++i) {
    EXPECT_EQ(off->results[i].entity, full->results[i].entity);
    EXPECT_EQ(off->results[i].score, full->results[i].score);
  }
}

}  // namespace
}  // namespace opinedb
